"""Wall-clock benchmark harness for the simulation hot path.

``repro perf`` times a fixed matrix of small, deterministic,
observability-disabled configurations and reports how many simulator
events per second of *host* time the engine sustains.  Results land in
``BENCH_sim.json`` at the repository root; every run prints a
comparison table against the previous file, so the trajectory of the
hot path is visible PR over PR (see ``docs/PERFORMANCE.md``).

Design constraints:

* **Deterministic.**  Every config must process an identical event
  count on every run (asserted across repeats) — wall seconds are the
  only thing allowed to vary.
* **Obs-disabled.**  The matrix measures the production fast path; the
  cost of *enabled* instrumentation is measured separately by
  ``tests/obs/test_overhead.py``.
* **Small.**  The full matrix finishes in well under a minute so it can
  run on every PR; ``--smoke`` shrinks it to a few seconds for CI.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional

from repro.sim import Environment, Resource, Store

__all__ = [
    "BENCH_JSON_NAME",
    "GUARD_ENTRIES",
    "GUARD_MAX_REGRESSION",
    "MATRIX",
    "BenchResult",
    "cmd_perf",
    "render_comparison",
    "run_guard",
    "run_matrix",
]

#: Canonical results file, at the repository root.
BENCH_JSON_NAME = "BENCH_sim.json"

#: Schema version of the JSON file.
SCHEMA = 1


@dataclass
class BenchResult:
    """Timing of one matrix entry (best of ``repeats`` runs)."""

    name: str
    events: int
    wall_seconds: float
    sim_seconds: float

    @property
    def events_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.events / self.wall_seconds

    def to_dict(self) -> dict:
        return {
            "events": self.events,
            "wall_seconds": round(self.wall_seconds, 6),
            "sim_seconds": self.sim_seconds,
            "events_per_sec": round(self.events_per_sec, 1),
        }


# -- the matrix -----------------------------------------------------------------


def _engine_micro(smoke: bool) -> tuple[int, float]:
    """Pure-engine stress: timeout chains, store handoffs, resource
    contention — no cluster layer, so this isolates the kernel cost."""
    pairs = 4 if smoke else 16
    rounds = 50 if smoke else 600
    env = Environment()
    cpu = Resource(env, capacity=max(2, pairs // 2))

    def producer(store: Store, period: float) -> object:
        for i in range(rounds):
            yield env.timeout(period)
            yield store.put(i)

    def consumer(store: Store) -> object:
        for _ in range(rounds):
            item = yield store.get()
            grant = cpu.request()
            yield grant
            yield env.timeout(1e-6 * (1 + item % 3))
            cpu.release(grant)

    for p in range(pairs):
        store = Store(env, capacity=8)
        env.process(producer(store, 1e-6 * (1 + p % 5)))
        env.process(consumer(store))
    env.run()
    return env.events_processed, env.now


def _system_bench(
    factory: Callable, cores: int, scheme: str = "dsmtx", replicas: int = 0,
    **config_kwargs,
) -> Callable[[bool], tuple[int, float]]:
    def run(smoke: bool) -> tuple[int, float]:
        from repro.core import DSMTXSystem, SystemConfig

        workload = factory(smoke)
        plan = workload.dsmtx_plan() if scheme == "dsmtx" else workload.tls_plan()
        config = SystemConfig(total_cores=cores, coa_replicas=replicas,
                              **config_kwargs)
        system = DSMTXSystem(plan, config)
        result = system.run()
        return system.env.events_processed, result.elapsed_seconds

    return run


def _crc32(iterations: int, smoke_iterations: int, misspec: Optional[set] = None):
    def factory(smoke: bool):
        from repro.workloads import Crc32

        count = smoke_iterations if smoke else iterations
        bad = {count // 2} if misspec else None
        return Crc32(iterations=count, misspec_iterations=bad)

    return factory


def _blackscholes(iterations: int, smoke_iterations: int):
    def factory(smoke: bool):
        from repro.workloads import BlackScholes

        return BlackScholes(iterations=smoke_iterations if smoke else iterations)

    return factory


def _benchmark(name: str, iterations: int, smoke_iterations: int, access: str):
    """Factory for a named benchmark under a specific access leg."""
    def factory(smoke: bool):
        from repro.workloads import BENCHMARKS

        count = smoke_iterations if smoke else iterations
        return BENCHMARKS[name](iterations=count, access=access)

    return factory


def _specfor_bench(
    name: str, iterations: int, smoke_iterations: int,
    workers: int = 4, density: float = 0.5, **config_kwargs,
) -> Callable[[bool], tuple[int, float]]:
    """A speculative_for run of one irregular workload on the simulated
    reservations runtime (workers + commit-service units).  Extra
    ``config_kwargs`` build an explicit :class:`SystemConfig` — the
    fault-tolerant entries use this to price the framed transport and
    the replication stream."""
    def run(smoke: bool) -> tuple[int, float]:
        from repro.paradigms import SpecForSystem
        from repro.workloads import ALL_BENCHMARKS

        count = smoke_iterations if smoke else iterations
        workload = ALL_BENCHMARKS[name](iterations=count, density=density)
        config = None
        if config_kwargs:
            from repro.core import SystemConfig

            extra = 1 + (1 if config_kwargs.get("commit_replication") else 0)
            config = SystemConfig(total_cores=workers + extra, **config_kwargs)
        system = SpecForSystem(workload, config, workers=workers)
        result = system.run()
        return system.env.events_processed, result.elapsed_seconds

    return run


def _irregular_dsmtx(
    name: str, iterations: int, smoke_iterations: int, density: float = 0.5,
) -> Callable[[bool], tuple[int, float]]:
    def factory(smoke: bool):
        from repro.workloads import ALL_BENCHMARKS

        count = smoke_iterations if smoke else iterations
        return ALL_BENCHMARKS[name](iterations=count, density=density)

    return _system_bench(factory, cores=8)


def _memory_micro(access: str) -> Callable[[bool], tuple[int, float]]:
    """AddressSpace-layer A/B: the same word traffic (writes, reads,
    write-set extraction) through the per-word API vs. the block API.

    No simulator runs here — the returned "events" are memory word
    operations, identical for both legs, so the pair isolates the pure
    host-time amortization of the flat-array block paths.
    """
    def run(smoke: bool) -> tuple[int, float]:
        from repro.memory import AddressSpace

        blocks = 256 if smoke else 2048
        width = 64
        space = AddressSpace(f"perf_{access}")
        values = list(range(width))
        ops = 0
        for index in range(blocks):
            base = index * 4096
            if access == "block":
                space.write_block(base, values)
                got = space.read_block(base, width)
            else:
                for k in range(width):
                    space.write(base + (k << 3), k)
                got = [space.read(base + (k << 3)) for k in range(width)]
            assert got[-1] == width - 1
            ops += 2 * width
        # Write-set extraction: run-length vs. per-word re-reads.
        if access == "block":
            extracted = sum(len(vals) for _addr, vals in space.extract_blocks())
        else:
            extracted = 0
            for index in range(blocks):
                base = index * 4096
                for k in range(width):
                    space.read(base + (k << 3))
                    extracted += 1
        assert extracted == blocks * width
        return ops + extracted, 0.0

    return run


#: The fixed benchmark matrix: name -> callable(smoke) -> (events, sim_seconds).
#: Picked to cover the four hot-path layers: the engine itself
#: (engine_micro), queue/endpoint traffic (crc32 pipelines), the
#: batched-channel + interconnect path under misspeculation recovery,
#: COA replica routing, a TLS plan (sync queues), and the failure-aware
#: runtime with and without a hot-standby commit replica (the pair
#: prices the replication stream; docs/RESILIENCE.md).
MATRIX: dict[str, Callable[[bool], tuple[int, float]]] = {
    "engine_micro": _engine_micro,
    "crc32_dsmtx_8c": _system_bench(_crc32(48, 8), cores=8),
    "crc32_misspec_8c": _system_bench(_crc32(32, 8, misspec=True), cores=8),
    "crc32_tls_8c": _system_bench(_crc32(48, 8), cores=8, scheme="tls"),
    "crc32_replicas_8c": _system_bench(_crc32(48, 8), cores=8, replicas=1),
    "blackscholes_16c": _system_bench(_blackscholes(384, 16), cores=16),
    "crc32_ft_8c": _system_bench(_crc32(48, 8), cores=8,
                                 fault_tolerance=True),
    "crc32_ft_standby_8c": _system_bench(_crc32(48, 8), cores=8,
                                         fault_tolerance=True,
                                         commit_replication=True,
                                         placement="spread"),
    # End-to-end integrity on top of the standby pair: CRC32 framing on
    # every reliable-transport message, page digests on commit, and the
    # committed-memory scrubber armed.  The spread vs. crc32_ft_standby_8c
    # prices the checksummed transport; crc32_ft_standby_8c itself (and
    # crc32_dsmtx_8c below it) double as the zero-cost-when-disabled
    # guard — integrity work leaking into integrity=False runs regresses
    # them (docs/RESILIENCE.md).
    "crc32_integrity_8c": _system_bench(_crc32(48, 8), cores=8,
                                        fault_tolerance=True,
                                        commit_replication=True,
                                        placement="spread",
                                        integrity=True),
    # Batched-access A/B pairs (docs/PERFORMANCE.md "Batched access"):
    # each _word/_block pair performs the same simulated work through
    # the per-word vs. block context APIs, so the spread is the host
    # amortization of run-length access records and slice memory ops.
    "crc32_word_8c": _system_bench(
        _benchmark("crc32", 24, 4, access="word"), cores=8),
    "crc32_block_8c": _system_bench(
        _benchmark("crc32", 24, 4, access="block"), cores=8),
    "hmmer_word_16c": _system_bench(
        _benchmark("456.hmmer", 256, 16, access="word"), cores=16),
    "hmmer_block_16c": _system_bench(
        _benchmark("456.hmmer", 256, 16, access="block"), cores=16),
    "blackscholes_block_16c": _system_bench(
        _benchmark("blackscholes", 192, 16, access="block"), cores=16),
    "gzip_block_8c": _system_bench(
        _benchmark("164.gzip", 96, 8, access="block"), cores=8),
    # Memory-layer A/B (no simulator): word ops through the per-word
    # vs. block AddressSpace APIs.
    "mem_word_micro": _memory_micro("word"),
    "mem_block_micro": _memory_micro("block"),
    # Deterministic-reservations runtime (speculative_for): the three
    # irregular workloads on the round protocol, plus one conflict A/B
    # against the DSMTX try-commit pipeline on the same workload.
    "specfor_sf_4w": _specfor_bench("spanning_forest", 96, 16),
    "specfor_mis_4w": _specfor_bench("maximal_independent_set", 64, 16),
    "specfor_lc_4w": _specfor_bench("list_contraction", 64, 16),
    "sf_dsmtx_8c": _irregular_dsmtx("spanning_forest", 96, 16),
    # The fault-tolerant reservations runtime: same workload as
    # specfor_sf_4w through the framed transport with a hot-standby
    # reservation service, so the pair prices what crash survival costs.
    "specfor_ft_4w": _specfor_bench(
        "spanning_forest", 96, 16,
        fault_tolerance=True, commit_replication=True, placement="spread"),
}

#: Entries the CI perf-drift guard watches, and the tolerated
#: regression vs. the committed baseline before the guard fails.
#: specfor_sf_4w and specfor_ft_4w guard both sides of the
#: fault-tolerance switch: the former is the zero-cost-when-disabled
#: check (FT machinery creeping into the plain path regresses it), the
#: latter the framed-transport + replication hot path itself.
#: crc32_ft_standby_8c / crc32_integrity_8c do the same for the
#: integrity switch: the former fails if checksum/digest work leaks
#: into integrity=False runs, the latter watches the checksummed
#: transport + scrubber hot path itself.
GUARD_ENTRIES = ("crc32_dsmtx_8c", "engine_micro", "specfor_sf_4w",
                 "specfor_ft_4w", "crc32_ft_standby_8c",
                 "crc32_integrity_8c")
GUARD_MAX_REGRESSION = 0.30


# -- running ---------------------------------------------------------------------


def run_matrix(smoke: bool = False, repeats: int = 3) -> list[BenchResult]:
    """Time every matrix entry; best wall time of ``repeats`` runs.

    Raises ``AssertionError`` if any entry's event count differs
    between repeats — the matrix must be deterministic.
    """
    repeats = 1 if smoke else max(1, repeats)
    results = []
    for name, bench in MATRIX.items():
        best = float("inf")
        events = sim_seconds = None
        for _ in range(repeats):
            begin = time.perf_counter()
            got_events, got_sim = bench(smoke)
            wall = time.perf_counter() - begin
            if events is None:
                events, sim_seconds = got_events, got_sim
            else:
                assert events == got_events, (
                    f"{name}: non-deterministic event count "
                    f"({events} != {got_events})"
                )
            best = min(best, wall)
        results.append(
            BenchResult(name=name, events=events, wall_seconds=best,
                        sim_seconds=sim_seconds)
        )
        print(f"  {name:<20} {events:>9} events  {best:8.3f} s  "
              f"{events / best:>12,.0f} ev/s", file=sys.stderr)
    return results


# -- persistence and comparison --------------------------------------------------


def _totals(results: list[BenchResult]) -> dict:
    events = sum(r.events for r in results)
    wall = sum(r.wall_seconds for r in results)
    return {
        "events": events,
        "wall_seconds": round(wall, 6),
        "events_per_sec": round(events / wall, 1) if wall > 0 else 0.0,
    }


def results_payload(results: list[BenchResult], baseline: Optional[dict]) -> dict:
    payload = {
        "schema": SCHEMA,
        "python": sys.version.split()[0],
        "totals": _totals(results),
        "benchmarks": {r.name: r.to_dict() for r in results},
    }
    if baseline is not None:
        payload["baseline"] = {
            "totals": baseline.get("totals"),
            "benchmarks": baseline.get("benchmarks", {}),
        }
    return payload


def load_previous(path: Path) -> Optional[dict]:
    """The previous ``BENCH_sim.json``, if one exists and parses."""
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict) or "benchmarks" not in data:
        return None
    return data


def render_comparison(results: list[BenchResult], previous: Optional[dict]) -> str:
    """Baseline-vs-current table (previous JSON on the left)."""
    from repro.analysis import render_table

    prev_benchmarks = (previous or {}).get("benchmarks", {})
    rows = []
    for r in results:
        old = prev_benchmarks.get(r.name)
        if old and old.get("events_per_sec"):
            old_rate = old["events_per_sec"]
            ratio = f"{r.events_per_sec / old_rate:.2f}x"
            old_text = f"{old_rate:,.0f}"
        else:
            old_text, ratio = "-", "-"
        rows.append([
            r.name, f"{r.events:,}", f"{r.wall_seconds:.3f}",
            old_text, f"{r.events_per_sec:,.0f}", ratio,
        ])
    totals = _totals(results)
    old_totals = (previous or {}).get("totals") or {}
    if old_totals.get("events_per_sec"):
        old_rate = old_totals["events_per_sec"]
        ratio = f"{totals['events_per_sec'] / old_rate:.2f}x"
        old_text = f"{old_rate:,.0f}"
    else:
        old_text, ratio = "-", "-"
    rows.append([
        "TOTAL", f"{totals['events']:,}", f"{totals['wall_seconds']:.3f}",
        old_text, f"{totals['events_per_sec']:,.0f}", ratio,
    ])
    return render_table(
        ["benchmark", "events", "wall s", "baseline ev/s", "current ev/s", "speedup"],
        rows,
        title="Hot-path throughput (wall clock, obs disabled)",
    )


def run_guard(baseline_path: Path, repeats: int = 3,
              max_regression: float = GUARD_MAX_REGRESSION) -> int:
    """Perf-drift guard: time the :data:`GUARD_ENTRIES` at full size and
    fail (exit 1) if either regresses more than ``max_regression`` in
    events/sec vs. the committed baseline file.

    The threshold is deliberately loose (CI machines are noisy); the
    guard exists to catch order-of-magnitude slips — a hot path falling
    off its fast path — not single-digit drift.
    """
    previous = load_previous(baseline_path)
    if previous is None:
        print(f"perf guard: no readable baseline at {baseline_path}",
              file=sys.stderr)
        return 2
    baseline = previous.get("benchmarks", {})
    failures = []
    for name in GUARD_ENTRIES:
        recorded = (baseline.get(name) or {}).get("events_per_sec")
        if not recorded:
            print(f"perf guard: baseline has no events_per_sec for {name}",
                  file=sys.stderr)
            return 2
        bench = MATRIX[name]
        best = float("inf")
        events = None
        for _ in range(max(1, repeats)):
            begin = time.perf_counter()
            got_events, _sim = bench(False)
            best = min(best, time.perf_counter() - begin)
            events = got_events
        rate = events / best
        ratio = rate / recorded
        verdict = "ok" if ratio >= 1.0 - max_regression else "REGRESSED"
        print(f"  {name:<20} baseline {recorded:>12,.0f} ev/s  "
              f"current {rate:>12,.0f} ev/s  {ratio:5.2f}x  {verdict}",
              file=sys.stderr)
        if verdict != "ok":
            failures.append(name)
    if failures:
        print(f"perf guard FAILED: {', '.join(failures)} regressed more than "
              f"{max_regression:.0%} vs {baseline_path.name}", file=sys.stderr)
        return 1
    print("perf guard passed", file=sys.stderr)
    return 0


def cmd_perf(args) -> int:
    """``repro perf``: run the matrix, write BENCH_sim.json, compare."""
    out = Path(args.out) if args.out else Path.cwd() / BENCH_JSON_NAME
    if getattr(args, "guard", False):
        return run_guard(out, repeats=args.repeats)
    previous = load_previous(out)
    mode = "smoke" if args.smoke else f"full (best of {args.repeats})"
    print(f"running perf matrix [{mode}] ...", file=sys.stderr)
    results = run_matrix(smoke=args.smoke, repeats=args.repeats)
    print()
    print(render_comparison(results, previous))
    # Smoke runs validate the harness; they must not overwrite real
    # numbers with throwaway single-repeat timings of a tiny matrix.
    if args.smoke and previous is not None and args.out is None:
        print(f"\nsmoke run: leaving existing {out.name} untouched")
        return 0
    baseline = None
    if previous is not None:
        baseline = {
            "totals": previous.get("totals"),
            "benchmarks": previous.get("benchmarks", {}),
        }
    payload = results_payload(results, baseline)
    if args.smoke:
        payload["smoke"] = True
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {out}")
    return 0
