"""Wire-level interconnect model.

Transfers between cores pay three costs:

1. **transmit serialization** — ``nbytes / bandwidth`` while holding the
   sender node's NIC transmit resource (so concurrent senders on one
   node contend, which is what makes bandwidth-hungry applications such
   as 164.gzip plateau in Figures 4/5a);
2. **propagation latency** — a one-way delay occupying neither NIC
   (messages pipeline through the network);
3. **receive serialization** — ``nbytes / bandwidth`` holding the
   receiver node's NIC receive resource.

Intra-node transfers use the shared-memory parameters of the
:class:`~repro.cluster.spec.ClusterSpec` and skip NIC contention (the
"serialization" there is the memcpy cost paid by the sender).

A transfer is split into a synchronous **transmit phase**, executed in
the sending process (eager-protocol semantics: the sender's call returns
once the data has left its hands), and an asynchronous **delivery
phase** that the interconnect runs as its own process.  Because the
transmit phase of messages from one sender is serialized — by the NIC
resource across nodes, by program order within a process — and the
propagation latency per (src, dst) pair is constant, deliveries between
a fixed pair of cores arrive in the order they were sent, which gives
channels FIFO semantics for free.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.cluster.node import Machine
from repro.sim import Environment, Event

__all__ = ["Interconnect", "TransferStats"]


class TransferStats:
    """Aggregate transfer statistics for bandwidth analysis (Fig. 5a)."""

    def __init__(self) -> None:
        self.total_bytes = 0
        self.total_messages = 0
        self.inter_node_bytes = 0
        self.intra_node_bytes = 0

    def record(self, nbytes: int, inter_node: bool) -> None:
        self.total_bytes += nbytes
        self.total_messages += 1
        if inter_node:
            self.inter_node_bytes += nbytes
        else:
            self.intra_node_bytes += nbytes

    def snapshot(self) -> dict:
        """Plain-dict view for reports."""
        return {
            "total_bytes": self.total_bytes,
            "total_messages": self.total_messages,
            "inter_node_bytes": self.inter_node_bytes,
            "intra_node_bytes": self.intra_node_bytes,
        }


class _Delivery:
    """One in-flight message, driven as a chain of event callbacks.

    Behaviourally identical to running :meth:`Interconnect._delivery_phase`
    as its own process — same timeouts, same NIC receive contention, same
    hand-off instant — but without the process machinery: no Initialize
    event, no generator frame, no process-completion event.  On the
    batched-queue fast path that removes two queue trips per envelope,
    and with a (``mailbox``, ``payload``) destination the final hand-off
    is a :meth:`~repro.sim.resources.Store.put_nowait`, removing the
    per-message put-acknowledge event and deliver closure as well.
    """

    __slots__ = ("env", "dst_node", "nbytes", "bandwidth", "mailbox",
                 "payload", "deliver", "_rx")

    def __init__(
        self,
        env: "Environment",
        dst_node: Any,
        nbytes: int,
        latency: float,
        bandwidth: float,
        mailbox: Any,
        payload: Any,
        deliver: Optional[Callable[[], Any]],
    ) -> None:
        self.env = env
        self.nbytes = nbytes
        self.mailbox = mailbox
        self.payload = payload
        self.deliver = deliver
        #: Destination node, or ``None`` for an intra-node transfer.
        self.dst_node = dst_node
        self.bandwidth = bandwidth
        self._rx: Optional[Event] = None
        # A zero latency still takes one trip through the event queue
        # (as the old delivery process's Initialize event did), so the
        # hand-off never happens synchronously inside the sender.
        env.sleep(latency).callbacks.append(self._after_latency)

    def _after_latency(self, _event: Event) -> None:
        node = self.dst_node
        if node is None:
            self._finish()
            return
        node.bytes_received += self.nbytes
        rx = node.nic_rx.request()
        self._rx = rx
        rx.callbacks.append(self._after_rx_grant)

    def _after_rx_grant(self, _event: Event) -> None:
        serialization = self.nbytes / self.bandwidth
        if serialization > 0:
            self.env.sleep(serialization).callbacks.append(self._after_serialization)
        else:
            self._after_serialization(_event)

    def _after_serialization(self, _event: Event) -> None:
        self.dst_node.nic_rx.release(self._rx)
        self._finish()

    def _finish(self) -> None:
        if self.mailbox is not None:
            self.mailbox.put_nowait(self.payload)
        elif self.deliver is not None:
            self.deliver()


class Interconnect:
    """Point-to-point transfer engine over the cluster's NICs."""

    def __init__(self, env: Environment, machine: Machine) -> None:
        self.env = env
        self.machine = machine
        self.spec = machine.spec
        self.stats = TransferStats()
        # Per-core node lookups and the two wire-parameter pairs,
        # resolved once: send() runs for every batch and control message.
        spec = self.spec
        self._node_index_of = [spec.node_of_core(i) for i in range(spec.total_cores)]
        self._node_of = [machine.nodes[n] for n in self._node_index_of]
        self._intra = (spec.intra_node_latency_s, spec.intra_node_bandwidth_bps)
        self._inter = (spec.inter_node_latency_s, spec.inter_node_bandwidth_bps)

    # -- public API -----------------------------------------------------------

    def send(
        self,
        src_core: int,
        dst_core: int,
        nbytes: int,
        deliver: Optional[Callable[[], Any]] = None,
        mailbox: Any = None,
        payload: Any = None,
    ) -> Generator[Event, Any, None]:
        """Eager send: transmit synchronously, deliver asynchronously.

        Drive with ``yield from`` in the sending process; it returns when
        the data has been handed to the network.  The delivery runs as a
        detached callback chain once the message reaches the destination:
        either ``payload`` is deposited into the ``mailbox`` store (the
        fast path — no closure, no put-acknowledge event) or the
        ``deliver`` callable runs.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        if src_core < 0 or dst_core < 0:
            raise IndexError(f"core index out of range: {src_core}, {dst_core}")
        node_index_of = self._node_index_of
        inter_node = node_index_of[src_core] != node_index_of[dst_core]
        stats = self.stats
        stats.total_bytes += nbytes
        stats.total_messages += 1
        # Transmit phase, inlined (this is _transmit_phase without the
        # extra generator frame and spec lookups).
        verdict = 0  # chaos verdicts: 0 deliver, 1 drop, 2 duplicate, 3 corrupt
        if inter_node:
            stats.inter_node_bytes += nbytes
            latency, bandwidth = self._inter
            chaos = self.env.chaos
            if chaos is not None:
                # Fault injection adjudicates inter-node traffic only;
                # the sender-side costs below are paid regardless (the
                # packets leave the NIC even if they die on the wire).
                verdict, latency, bandwidth = chaos.on_wire(
                    node_index_of[src_core], node_index_of[dst_core],
                    latency, bandwidth,
                )
                if verdict == 3:
                    # Silent corruption: deliver once, but with bits
                    # flipped in a *copy* of the payload (the sender's
                    # retransmit buffer keeps the intact original).
                    payload = chaos.corrupt_payload(payload)
                    verdict = 0
            src_node = self._node_of[src_core]
            src_node.bytes_sent += nbytes
            tx = src_node.nic_tx.request()
            yield tx
            try:
                serialization = nbytes / bandwidth
                if serialization > 0:
                    yield self.env.sleep(serialization)
            finally:
                src_node.nic_tx.release(tx)
            dst_node = self._node_of[dst_core]
        else:
            stats.intra_node_bytes += nbytes
            latency, bandwidth = self._intra
            # Intra-node: the sender pays the memcpy into the shared buffer.
            serialization = nbytes / bandwidth
            if serialization > 0:
                yield self.env.sleep(serialization)
            dst_node = None
        if verdict != 1:
            _Delivery(self.env, dst_node, nbytes, latency, bandwidth, mailbox, payload, deliver)
            if verdict == 2:
                _Delivery(self.env, dst_node, nbytes, latency, bandwidth, mailbox, payload, deliver)

    def send_blocking(
        self,
        src_core: int,
        dst_core: int,
        nbytes: int,
        deliver: Optional[Callable[[], Any]] = None,
    ) -> Generator[Event, Any, None]:
        """Rendezvous send: returns only after full delivery."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        inter_node = not self.spec.same_node(src_core, dst_core)
        self.stats.record(nbytes, inter_node)
        yield from self._transmit_phase(src_core, dst_core, nbytes, inter_node)
        yield from self._delivery_phase(src_core, dst_core, nbytes, inter_node, deliver)

    # -- phases ---------------------------------------------------------------

    def _transmit_phase(
        self, src_core: int, dst_core: int, nbytes: int, inter_node: bool
    ) -> Generator[Event, Any, None]:
        latency_, bandwidth = self.spec.wire_parameters(src_core, dst_core)
        serialization = nbytes / bandwidth
        if inter_node:
            src_node = self.machine.nodes[self.spec.node_of_core(src_core)]
            src_node.bytes_sent += nbytes
            tx = src_node.nic_tx.request()
            yield tx
            try:
                if serialization > 0:
                    yield self.env.sleep(serialization)
            finally:
                src_node.nic_tx.release(tx)
        else:
            # Intra-node: the sender pays the memcpy into the shared buffer.
            if serialization > 0:
                yield self.env.sleep(serialization)

    def _delivery_phase(
        self,
        src_core: int,
        dst_core: int,
        nbytes: int,
        inter_node: bool,
        deliver: Optional[Callable[[], Any]],
    ) -> Generator[Event, Any, None]:
        latency, bandwidth = self.spec.wire_parameters(src_core, dst_core)
        if latency > 0:
            yield self.env.sleep(latency)
        if inter_node:
            dst_node = self.machine.nodes[self.spec.node_of_core(dst_core)]
            dst_node.bytes_received += nbytes
            rx = dst_node.nic_rx.request()
            yield rx
            try:
                serialization = nbytes / bandwidth
                if serialization > 0:
                    yield self.env.sleep(serialization)
            finally:
                dst_node.nic_rx.release(rx)
        if deliver is not None:
            deliver()
