"""Wire-level interconnect model.

Transfers between cores pay three costs:

1. **transmit serialization** — ``nbytes / bandwidth`` while holding the
   sender node's NIC transmit resource (so concurrent senders on one
   node contend, which is what makes bandwidth-hungry applications such
   as 164.gzip plateau in Figures 4/5a);
2. **propagation latency** — a one-way delay occupying neither NIC
   (messages pipeline through the network);
3. **receive serialization** — ``nbytes / bandwidth`` holding the
   receiver node's NIC receive resource.

Intra-node transfers use the shared-memory parameters of the
:class:`~repro.cluster.spec.ClusterSpec` and skip NIC contention (the
"serialization" there is the memcpy cost paid by the sender).

A transfer is split into a synchronous **transmit phase**, executed in
the sending process (eager-protocol semantics: the sender's call returns
once the data has left its hands), and an asynchronous **delivery
phase** that the interconnect runs as its own process.  Because the
transmit phase of messages from one sender is serialized — by the NIC
resource across nodes, by program order within a process — and the
propagation latency per (src, dst) pair is constant, deliveries between
a fixed pair of cores arrive in the order they were sent, which gives
channels FIFO semantics for free.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.cluster.node import Machine
from repro.sim import Environment, Event

__all__ = ["Interconnect", "TransferStats"]


class TransferStats:
    """Aggregate transfer statistics for bandwidth analysis (Fig. 5a)."""

    def __init__(self) -> None:
        self.total_bytes = 0
        self.total_messages = 0
        self.inter_node_bytes = 0
        self.intra_node_bytes = 0

    def record(self, nbytes: int, inter_node: bool) -> None:
        self.total_bytes += nbytes
        self.total_messages += 1
        if inter_node:
            self.inter_node_bytes += nbytes
        else:
            self.intra_node_bytes += nbytes

    def snapshot(self) -> dict:
        """Plain-dict view for reports."""
        return {
            "total_bytes": self.total_bytes,
            "total_messages": self.total_messages,
            "inter_node_bytes": self.inter_node_bytes,
            "intra_node_bytes": self.intra_node_bytes,
        }


class Interconnect:
    """Point-to-point transfer engine over the cluster's NICs."""

    def __init__(self, env: Environment, machine: Machine) -> None:
        self.env = env
        self.machine = machine
        self.spec = machine.spec
        self.stats = TransferStats()

    # -- public API -----------------------------------------------------------

    def send(
        self,
        src_core: int,
        dst_core: int,
        nbytes: int,
        deliver: Optional[Callable[[], Any]] = None,
    ) -> Generator[Event, Any, None]:
        """Eager send: transmit synchronously, deliver asynchronously.

        Drive with ``yield from`` in the sending process; it returns when
        the data has been handed to the network.  ``deliver`` runs in a
        detached process once the message reaches the destination.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        inter_node = not self.spec.same_node(src_core, dst_core)
        self.stats.record(nbytes, inter_node)
        yield from self._transmit_phase(src_core, dst_core, nbytes, inter_node)
        self.env.process(self._delivery_phase(src_core, dst_core, nbytes, inter_node, deliver))

    def send_blocking(
        self,
        src_core: int,
        dst_core: int,
        nbytes: int,
        deliver: Optional[Callable[[], Any]] = None,
    ) -> Generator[Event, Any, None]:
        """Rendezvous send: returns only after full delivery."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        inter_node = not self.spec.same_node(src_core, dst_core)
        self.stats.record(nbytes, inter_node)
        yield from self._transmit_phase(src_core, dst_core, nbytes, inter_node)
        yield from self._delivery_phase(src_core, dst_core, nbytes, inter_node, deliver)

    # -- phases ---------------------------------------------------------------

    def _transmit_phase(
        self, src_core: int, dst_core: int, nbytes: int, inter_node: bool
    ) -> Generator[Event, Any, None]:
        latency_, bandwidth = self.spec.wire_parameters(src_core, dst_core)
        serialization = nbytes / bandwidth
        if inter_node:
            src_node = self.machine.nodes[self.spec.node_of_core(src_core)]
            src_node.bytes_sent += nbytes
            tx = src_node.nic_tx.request()
            yield tx
            try:
                if serialization > 0:
                    yield self.env.timeout(serialization)
            finally:
                src_node.nic_tx.release(tx)
        else:
            # Intra-node: the sender pays the memcpy into the shared buffer.
            if serialization > 0:
                yield self.env.timeout(serialization)

    def _delivery_phase(
        self,
        src_core: int,
        dst_core: int,
        nbytes: int,
        inter_node: bool,
        deliver: Optional[Callable[[], Any]],
    ) -> Generator[Event, Any, None]:
        latency, bandwidth = self.spec.wire_parameters(src_core, dst_core)
        if latency > 0:
            yield self.env.timeout(latency)
        if inter_node:
            dst_node = self.machine.nodes[self.spec.node_of_core(dst_core)]
            dst_node.bytes_received += nbytes
            rx = dst_node.nic_rx.request()
            yield rx
            try:
                serialization = nbytes / bandwidth
                if serialization > 0:
                    yield self.env.timeout(serialization)
            finally:
                dst_node.nic_rx.release(rx)
        if deliver is not None:
            deliver()
