"""Thread-to-core placement policies.

DSMTX launches workers as POSIX processes, potentially on different
nodes (paper section 3.1).  The placement policy decides which global
core hosts each runtime unit.  Two policies are provided:

* ``pack`` — fill nodes one after another (cores 0,1,2,3 on node 0,
  then node 1, ...).  This is how MPI ranks are laid out by default and
  keeps pipeline neighbours on the same node when possible.
* ``spread`` — round-robin across nodes, maximizing per-unit NIC and
  memory bandwidth at the cost of more inter-node traffic.
"""

from __future__ import annotations

from repro.cluster.spec import ClusterSpec
from repro.errors import PlacementError

__all__ = ["place_units", "PLACEMENT_POLICIES"]

PLACEMENT_POLICIES = ("pack", "spread")


def place_units(spec: ClusterSpec, count: int, policy: str = "pack") -> list[int]:
    """Assign ``count`` runtime units to distinct global core indices.

    Returns the list of core indices, one per unit, in unit order.
    """
    if count < 1:
        raise PlacementError(f"at least one unit required, got {count}")
    if count > spec.total_cores:
        raise PlacementError(
            f"{count} units do not fit on {spec.total_cores} cores "
            f"({spec.nodes} nodes x {spec.cores_per_node} cores)"
        )
    if policy == "pack":
        return list(range(count))
    if policy == "spread":
        cores: list[int] = []
        for unit in range(count):
            node = unit % spec.nodes
            slot = unit // spec.nodes
            cores.append(node * spec.cores_per_node + slot)
        return cores
    raise PlacementError(f"unknown placement policy {policy!r}; choose from {PLACEMENT_POLICIES}")
