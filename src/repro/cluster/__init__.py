"""Commodity-cluster substrate: nodes, cores, interconnect, MPI, queues.

This package models the paper's evaluation platform — a 32-node,
128-core cluster joined by InfiniBand and driven through OpenMPI — at
the level of detail the DSMTX results depend on: per-core computation
time, wire latency and bandwidth with NIC contention, per-MPI-call
software overheads, and the batched DSMTX message queue built on top.
"""

from repro.cluster.channel import CLOSE_TOKEN, Channel
from repro.cluster.interconnect import Interconnect, TransferStats
from repro.cluster.mpi import MPI
from repro.cluster.node import Core, Machine, Node
from repro.cluster.placement import PLACEMENT_POLICIES, place_units
from repro.cluster.spec import DEFAULT_CLUSTER, SCC_LIKE, ClusterSpec, MPIVariant

__all__ = [
    "ClusterSpec",
    "DEFAULT_CLUSTER",
    "SCC_LIKE",
    "MPIVariant",
    "Core",
    "Node",
    "Machine",
    "Interconnect",
    "TransferStats",
    "MPI",
    "Channel",
    "CLOSE_TOKEN",
    "place_units",
    "PLACEMENT_POLICIES",
]
