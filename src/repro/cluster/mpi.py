"""Simulated MPI point-to-point layer.

DSMTX is implemented on top of OpenMPI (paper section 4).  This module
models the three send flavours the paper measures — ``MPI_Send``,
``MPI_Bsend``, ``MPI_Isend`` — each paying a calibrated per-call
software overhead on the sender, and ``MPI_Recv`` paying the paper's
~2,295-instruction overhead on the receiver, on top of the wire costs
charged by the :class:`~repro.cluster.interconnect.Interconnect`.

Ranks are global core indices: every runtime unit is pinned to one core
and communicates from it.  Messages between a fixed (source,
destination, tag) triple are delivered in FIFO order.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.cluster.interconnect import Interconnect, _Delivery
from repro.cluster.node import Machine
from repro.cluster.spec import MPIVariant
from repro.errors import CommunicationError
from repro.obs.tracer import CAT_MPI_RECV, CAT_MPI_SEND, PID_CLUSTER
from repro.sim import Environment, Event, Store

__all__ = ["MPI", "MPIVariant"]

#: Fixed envelope (header) bytes added to every MPI message on the wire.
ENVELOPE_BYTES = 32


class MPI:
    """Point-to-point messaging between cores with MPI-like costs."""

    def __init__(self, env: Environment, machine: Machine, interconnect: Interconnect) -> None:
        self.env = env
        self.machine = machine
        self.spec = machine.spec
        self.interconnect = interconnect
        self._mailboxes: dict[tuple[int, int, Any], Store] = {}
        #: Messages sent, per variant, for diagnostics.
        self.sent_count: dict[MPIVariant, int] = {v: 0 for v in MPIVariant}
        # Per-variant sender cost in cycles, resolved once for the send
        # hot path (one division per variant instead of one per message).
        ipc = self.spec.instructions_per_cycle
        self._variant_cycles = {
            v: instructions / ipc
            for v, instructions in self.spec.mpi_variant_sender_instructions.items()
        }
        self._recv_cycles = self.spec.mpi_recv_instructions / ipc

    def mailbox(self, src_rank: int, dst_rank: int, tag: Any = 0) -> Store:
        """The FIFO mailbox for (src, dst, tag), created on first use."""
        key = (src_rank, dst_rank, tag)
        store = self._mailboxes.get(key)
        if store is None:
            store = Store(self.env)
            self._mailboxes[key] = store
        return store

    # -- sending ----------------------------------------------------------------

    def send(
        self,
        src_rank: int,
        dst_rank: int,
        payload: Any,
        nbytes: int,
        tag: Any = 0,
        variant: MPIVariant = MPIVariant.SEND,
        mailbox: Optional[Store] = None,
    ) -> Generator[Event, Any, None]:
        """Send ``payload`` (eager protocol): returns once the data has
        been handed to the network; delivery completes asynchronously.

        ``nbytes`` is the application-payload size; the envelope header
        is added on the wire.  Drive with ``yield from`` in the sending
        process.  ``mailbox`` overrides the per-(src, dst, tag) mailbox
        with an explicit delivery store — used by the runtime, where a
        unit multiplexes all senders over one inbox.
        """
        if src_rank == dst_rank:
            raise CommunicationError(f"send to self (rank {src_rank}) is not supported")
        obs = self.env.obs
        start = self.env.now if obs is not None else 0.0
        core = self.machine.core(src_rank)
        yield from core.drain()
        yield core.compute(self._variant_cycles[variant])
        self.sent_count[variant] += 1
        box = mailbox if mailbox is not None else self.mailbox(src_rank, dst_rank, tag)
        # Interconnect.send inlined (the eager mailbox path): one
        # generator frame per message instead of two.  Must stay
        # behaviour-identical to Interconnect.send — edit both together.
        ic = self.interconnect
        wire_bytes = nbytes + ENVELOPE_BYTES
        if wire_bytes < 0:
            raise ValueError(f"negative transfer size: {wire_bytes}")
        if dst_rank < 0:
            raise IndexError(f"core index out of range: {src_rank}, {dst_rank}")
        node_index_of = ic._node_index_of
        inter_node = node_index_of[src_rank] != node_index_of[dst_rank]
        stats = ic.stats
        stats.total_bytes += wire_bytes
        stats.total_messages += 1
        verdict = 0  # chaos verdicts: 0 deliver, 1 drop, 2 duplicate, 3 corrupt
        if inter_node:
            stats.inter_node_bytes += wire_bytes
            latency, bandwidth = ic._inter
            chaos = self.env.chaos
            if chaos is not None:
                # Fault injection adjudicates inter-node traffic only;
                # the sender-side costs below are paid regardless (the
                # packets leave the NIC even if they die on the wire).
                verdict, latency, bandwidth = chaos.on_wire(
                    node_index_of[src_rank], node_index_of[dst_rank],
                    latency, bandwidth,
                )
                if verdict == 3:
                    # Silent corruption: deliver once, but with bits
                    # flipped in a *copy* of the payload (the sender's
                    # retransmit buffer keeps the intact original).
                    payload = chaos.corrupt_payload(payload)
                    verdict = 0
            src_node = ic._node_of[src_rank]
            src_node.bytes_sent += wire_bytes
            tx = src_node.nic_tx.request()
            yield tx
            try:
                serialization = wire_bytes / bandwidth
                if serialization > 0:
                    yield self.env.sleep(serialization)
            finally:
                src_node.nic_tx.release(tx)
            dst_node = ic._node_of[dst_rank]
        else:
            stats.intra_node_bytes += wire_bytes
            latency, bandwidth = ic._intra
            # Intra-node: the sender pays the memcpy into the shared buffer.
            serialization = wire_bytes / bandwidth
            if serialization > 0:
                yield self.env.sleep(serialization)
            dst_node = None
        if verdict != 1:
            _Delivery(self.env, dst_node, wire_bytes, latency, bandwidth, box, payload, None)
            if verdict == 2:
                _Delivery(self.env, dst_node, wire_bytes, latency, bandwidth, box, payload, None)
        if obs is not None:
            obs.tracer.complete(
                CAT_MPI_SEND, variant.value, PID_CLUSTER, src_rank, start,
                dst=dst_rank, bytes=nbytes,
            )
            obs.metrics.counter("mpi.sends").inc()
            obs.metrics.histogram("mpi.send_bytes").observe(nbytes)

    def recv(
        self, dst_rank: int, src_rank: int, tag: Any = 0
    ) -> Generator[Event, Any, Any]:
        """Blocking receive; returns the payload.

        Drive with ``payload = yield from mpi.recv(...)`` in the
        receiving process.  Raises
        :class:`~repro.errors.ChannelFlushedError` if the mailbox is
        flushed (misspeculation recovery) while blocked.
        """
        obs = self.env.obs
        start = self.env.now if obs is not None else 0.0
        core = self.machine.core(dst_rank)
        yield from core.drain()
        box = self.mailbox(src_rank, dst_rank, tag)
        payload = yield box.get()
        yield core.compute(self._recv_cycles)
        if obs is not None:
            obs.tracer.complete(
                CAT_MPI_RECV, "MPI_Recv", PID_CLUSTER, dst_rank, start,
                src=src_rank,
            )
            obs.metrics.counter("mpi.recvs").inc()
        return payload

    def try_recv(self, dst_rank: int, src_rank: int, tag: Any = 0) -> tuple[bool, Any]:
        """Non-blocking probe+receive; charges the receive overhead as a
        deferred cost only when a message was available."""
        box = self.mailbox(src_rank, dst_rank, tag)
        ok, payload = box.try_get()
        if ok:
            self.machine.core(dst_rank).charge_instructions(self.spec.mpi_recv_instructions)
        return ok, payload

    # -- recovery support ---------------------------------------------------------

    def flush_all(self, predicate: Optional[Any] = None) -> int:
        """Flush every mailbox (or those whose key satisfies ``predicate``),
        discarding queued messages and aborting blocked receivers.

        Returns the number of discarded messages.
        """
        discarded = 0
        for key, store in self._mailboxes.items():
            if predicate is None or predicate(key):
                discarded += store.flush()
        return discarded
