"""The DSMTX message queue (paper section 4.2).

Pipelined execution is insensitive to communication *latency* but very
sensitive to the per-datum *send overhead*: a single OpenMPI send or
receive call costs 500–2,295 instructions, so paying it for every
produced word would cap queue bandwidth at ~13 MBps.  DSMTX instead
buffers produced values and issues one ``MPI_Send`` when the buffer
reaches a predetermined size, amortizing the call overhead across the
batch and sustaining ~480 MBps (paper section 5.3, Figure 5b).

:class:`Channel` implements that queue.  Each ``produce``/``consume``
costs a few ring-buffer instructions; MPI calls happen once per batch.
Unlike ``MPI_Bsend``, the queue manages its own buffer space, so callers
never allocate or recycle buffers (section 4.2).

``mode="direct"`` disables batching and pays one MPI call per datum
using a selectable variant — the unoptimized baseline of Figure 5b.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, Optional

from repro.cluster.mpi import MPI, MPIVariant
from repro.errors import ChannelClosedError, CommunicationError
from repro.obs.tracer import CAT_QUEUE, PID_CLUSTER
from repro.sim import Event

__all__ = ["Channel", "CLOSE_TOKEN"]

#: Sentinel delivered to a consumer when the producer closes the channel.
CLOSE_TOKEN = object()


class Channel:
    """A unidirectional, FIFO, batched message queue between two cores.

    Parameters
    ----------
    mpi:
        The simulated MPI layer carrying the batches.
    src_core, dst_core:
        Global core indices of producer and consumer.  Exactly one unit
        produces and one consumes (DSMTX connects only threads that
        participate in the same MTX, keeping channel count linear).
    name:
        Unique channel name; used as the MPI tag.
    batch_bytes:
        Threshold at which buffered data is pushed with one MPI_Send.
    item_bytes:
        Default wire size of one produced datum (an (address, value)
        tuple is two 8-byte words).
    mode:
        ``"batched"`` (DSMTX queue) or ``"direct"`` (one MPI call per
        datum; Figure 5b baseline).
    variant:
        MPI send flavour used for the underlying transfers.
    integrity:
        Prepend a CRC32 of the batch's canonical encoding to every
        transfer and verify it on receive.  A mismatch raises
        :class:`~repro.errors.CommunicationError` — the stand-alone
        queue has no retransmit buffer, so corruption is fail-stop
        here rather than repaired (the runtime's reliable transport
        is the repairing path).
    """

    def __init__(
        self,
        mpi: MPI,
        src_core: int,
        dst_core: int,
        name: str,
        batch_bytes: Optional[int] = None,
        item_bytes: int = 16,
        mode: str = "batched",
        variant: MPIVariant = MPIVariant.SEND,
        integrity: bool = False,
    ) -> None:
        if mode not in ("batched", "direct"):
            raise CommunicationError(f"unknown channel mode: {mode!r}")
        self.mpi = mpi
        self.env = mpi.env
        self.spec = mpi.spec
        self.src_core = src_core
        self.dst_core = dst_core
        self.name = name
        self.batch_bytes = batch_bytes if batch_bytes is not None else self.spec.queue_batch_bytes
        self.item_bytes = item_bytes
        self.mode = mode
        self.variant = variant
        self.integrity = integrity
        self.closed = False

        self._send_buffer: list[Any] = []
        self._send_buffer_bytes = 0
        self._recv_buffer: list[Any] = []
        self._recv_index = 0
        # Resolved once; produce()/consume() run per datum.
        self._src_core_obj = mpi.machine.core(src_core)
        self._dst_core_obj = mpi.machine.core(dst_core)
        self._queue_op_instructions = self.spec.queue_op_instructions

        #: Statistics: payload bytes and datum/message counts.
        self.bytes_produced = 0
        self.items_produced = 0
        self.batches_sent = 0
        #: Checksum mismatches caught on receive (integrity mode).
        self.corruptions_detected = 0

    # -- integrity -------------------------------------------------------------

    def _wire(self, items: list, nbytes: int) -> tuple[list, int]:
        """Wrap a transfer for the wire: prepend the batch CRC when
        integrity is on (priced at the checksum's wire bytes)."""
        if not self.integrity:
            return items, nbytes
        from repro.core.integrity import CHECKSUM_BYTES, payload_checksum

        self._src_core_obj.charge_instructions(self._queue_op_instructions)
        return [payload_checksum(items)] + items, nbytes + CHECKSUM_BYTES

    def _unwrap(self, batch: list) -> list:
        """Verify and strip the leading CRC of a received transfer."""
        if not self.integrity:
            return batch
        from repro.core.integrity import payload_checksum

        self._dst_core_obj.charge_instructions(self._queue_op_instructions)
        expected, items = batch[0], batch[1:]
        if payload_checksum(items) != expected:
            self.corruptions_detected += 1
            raise CommunicationError(
                f"checksum mismatch on channel {self.name!r}: the batch "
                f"was corrupted in flight and this queue has no "
                f"retransmit path to repair it"
            )
        return items

    # -- producing -------------------------------------------------------------

    def produce(self, value: Any, nbytes: Optional[int] = None) -> Iterable[Event]:
        """Enqueue ``value``; drive with ``yield from`` in the producer.

        In batched mode the value lands in the local buffer for the cost
        of a ring-buffer write; the batch is pushed when full.  In
        direct mode every value pays a full MPI send.  The buffered fast
        path returns an empty tuple — no generator per datum.
        """
        if self.closed:
            raise ChannelClosedError(f"produce on closed channel {self.name!r}")
        size = self.item_bytes if nbytes is None else nbytes
        self.bytes_produced += size
        self.items_produced += 1
        if self.mode == "direct":
            wire, wire_bytes = self._wire([value], size)
            return self.mpi.send(
                self.src_core, self.dst_core, wire, wire_bytes, tag=self.name, variant=self.variant
            )
        self._src_core_obj.charge_instructions(self._queue_op_instructions)
        self._send_buffer.append(value)
        self._send_buffer_bytes += size
        if self._send_buffer_bytes >= self.batch_bytes:
            return self._push_batch()
        return ()

    def flush_pending(self) -> Iterable[Event]:
        """Push any partially filled batch to the consumer.

        Called at subTX boundaries: uncommitted values are explicitly
        forwarded at the end of a subTX (paper section 3.1), so a
        partial batch cannot linger past that point.
        """
        if self._send_buffer:
            return self._push_batch()
        return ()

    def close(self) -> Generator[Event, Any, None]:
        """Flush, then deliver a close token to the consumer."""
        yield from self.flush_pending()
        self.closed = True
        wire, wire_bytes = self._wire([CLOSE_TOKEN], 8)
        yield from self.mpi.send(
            self.src_core, self.dst_core, wire, wire_bytes, tag=self.name, variant=self.variant
        )

    def _push_batch(self) -> Generator[Event, Any, None]:
        obs = self.env.obs
        start = self.env.now if obs is not None else 0.0
        batch, self._send_buffer = self._send_buffer, []
        nbytes, self._send_buffer_bytes = self._send_buffer_bytes, 0
        self.batches_sent += 1
        wire, wire_bytes = self._wire(batch, nbytes)
        yield from self.mpi.send(
            self.src_core, self.dst_core, wire, wire_bytes, tag=self.name, variant=self.variant
        )
        if obs is not None:
            obs.tracer.complete(
                CAT_QUEUE, f"push:{self.name}", PID_CLUSTER, self.src_core, start,
                items=len(batch), bytes=nbytes,
            )
            obs.metrics.counter("queue.batches").inc()
            obs.metrics.histogram("queue.batch_bytes").observe(nbytes)

    # -- consuming -------------------------------------------------------------

    def consume(self) -> Generator[Event, Any, Any]:
        """Dequeue the next value; drive with ``yield from``.

        Returns :data:`CLOSE_TOKEN` once the producer has closed the
        channel and all data has been drained.  Raises
        :class:`~repro.errors.ChannelFlushedError` if the channel is
        flushed while blocked (misspeculation recovery).
        """
        if self._recv_index >= len(self._recv_buffer):
            batch = yield from self.mpi.recv(
                self.dst_core, self.src_core, tag=self.name
            )
            self._recv_buffer = self._unwrap(batch)
            self._recv_index = 0
        self._dst_core_obj.charge_instructions(self._queue_op_instructions)
        value = self._recv_buffer[self._recv_index]
        self._recv_index += 1
        return value

    def try_consume(self) -> tuple[bool, Any]:
        """Non-blocking consume: ``(True, value)`` or ``(False, None)``."""
        if self._recv_index >= len(self._recv_buffer):
            ok, batch = self.mpi.try_recv(self.dst_core, self.src_core, tag=self.name)
            if not ok:
                return False, None
            self._recv_buffer = self._unwrap(batch)
            self._recv_index = 0
        self._dst_core_obj.charge_instructions(self._queue_op_instructions)
        value = self._recv_buffer[self._recv_index]
        self._recv_index += 1
        return True, value

    @property
    def pending_items(self) -> int:
        """Items buffered locally on either side (not counting in-flight)."""
        return len(self._send_buffer) + (len(self._recv_buffer) - self._recv_index)

    # -- recovery ----------------------------------------------------------------

    def discard_all(self) -> int:
        """Drop all buffered and queued data; abort blocked consumers.

        Part of the FLQ (flush queues) phase of misspeculation recovery.
        Returns the number of local items discarded.
        """
        discarded = len(self._send_buffer) + (len(self._recv_buffer) - self._recv_index)
        self._send_buffer.clear()
        self._send_buffer_bytes = 0
        self._recv_buffer = []
        self._recv_index = 0
        self.closed = False
        mailbox = self.mpi.mailbox(self.src_core, self.dst_core, tag=self.name)
        discarded += mailbox.flush()
        return discarded
