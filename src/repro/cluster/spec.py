"""Cluster specification.

The paper's evaluation platform (section 5.1) is a 32-node cluster of Dell
PowerEdge 1950 servers — two dual-core Intel Xeon 5160 processors at
3.00 GHz per node (4 cores/node, 128 cores total) — interconnected by
InfiniBand, with OpenMPI as the communication layer.

:class:`ClusterSpec` captures every parameter the timing model needs:

* topology — node count and cores per node;
* core speed — clock frequency and sustained instructions per cycle;
* wire — one-way latency and bandwidth, separately for intra-node
  (shared-memory transport) and inter-node (InfiniBand) paths;
* MPI software overheads — instructions executed per call.  The paper
  reports that ``MPI_Send``/``MPI_Recv`` execute 500 to 2,295
  instructions to move 8 bytes (section 4.2), and measures sustained
  streaming bandwidths of 13.1 / 12.7 / 8.1 MBps for ``MPI_Send`` /
  ``MPI_Bsend`` / ``MPI_Isend`` versus 480.7 MBps for the batched DSMTX
  queue (section 5.3).  The per-variant critical-path instruction counts
  below are calibrated so the simulated stream bandwidths land on the
  paper's measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import ConfigurationError

__all__ = ["ClusterSpec", "MPIVariant", "DEFAULT_CLUSTER"]


class MPIVariant(Enum):
    """The MPI point-to-point send flavours compared in the paper."""

    SEND = "MPI_Send"
    BSEND = "MPI_Bsend"
    ISEND = "MPI_Isend"


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of the simulated commodity cluster."""

    #: Number of nodes in the cluster.
    nodes: int = 32
    #: Cores per node (2 x dual-core Xeon 5160 in the paper).
    cores_per_node: int = 4
    #: Core clock frequency in Hz (Xeon 5160 @ 3.00 GHz).
    clock_hz: float = 3.0e9
    #: Sustained instructions per cycle for runtime bookkeeping code.
    instructions_per_cycle: float = 1.25

    #: One-way wire latency between cores on the *same* node (seconds).
    intra_node_latency_s: float = 100e-9
    #: One-way wire latency between *different* nodes (InfiniBand).
    inter_node_latency_s: float = 2.0e-6
    #: Memory bandwidth for intra-node transfers (bytes/second).
    intra_node_bandwidth_bps: float = 20.0e9
    #: Link bandwidth between nodes (InfiniBand DDR-class).
    inter_node_bandwidth_bps: float = 1.25e9

    #: Receiver-side instructions for one MPI_Recv call (paper: up to
    #: 2,295 instructions to receive 8 bytes).
    mpi_recv_instructions: int = 2290
    #: Receiver-side instructions when the message has already arrived
    #: (the fast polling path: no blocking, no progress-engine entry).
    mpi_recv_ready_instructions: int = 600
    #: Sender-side instructions per call for each send variant.
    #: MPI_Send pays the paper's 500 instructions; MPI_Bsend adds the
    #: user-buffer copy and attach/detach bookkeeping; MPI_Isend adds
    #: request allocation plus the matching MPI_Wait.  The Bsend/Isend
    #: values are calibrated so that streaming 8-byte messages sustains
    #: the paper's measured 13.1 / 12.7 / 8.1 MBps (section 5.3).
    mpi_variant_sender_instructions: dict = field(
        default_factory=lambda: {
            MPIVariant.SEND: 500,
            MPIVariant.BSEND: 2242,
            MPIVariant.ISEND: 3583,
        }
    )

    #: Instructions for one enqueue/dequeue on the DSMTX message queue
    #: (ring-buffer slot write/read; no MPI call on the fast path).
    #: Calibrated so a stream of 8-byte produces with the default batch
    #: size sustains the paper's measured 480.7 MBps (section 5.3).
    queue_op_instructions: int = 35
    #: Default batch size (bytes) at which the DSMTX queue issues one
    #: MPI_Send for the buffered data.
    queue_batch_bytes: int = 4096
    #: Memory page size used by Copy-On-Access (section 4.2).
    page_bytes: int = 4096
    #: Size of one forwarded (address, value) tuple on the wire.
    word_bytes: int = 8

    # -- fault-tolerance knobs (only read when SystemConfig enables the
    # failure-aware runtime; see docs/RESILIENCE.md) ------------------------

    #: Period between heartbeats from each node to the commit unit.
    heartbeat_period_s: float = 50e-6
    #: Silence after which the failure detector declares a node dead.
    #: Several heartbeat periods plus wire latency, so a healthy node is
    #: never suspected (the detector is a perfect-link eventual detector).
    suspicion_timeout_s: float = 250e-6
    #: Initial retransmit timeout of the reliable transport.
    retransmit_timeout_s: float = 150e-6
    #: Exponential backoff factor applied per retransmission.
    retransmit_backoff: float = 2.0
    #: Ceiling on the backed-off retransmit timeout.
    retransmit_timeout_cap_s: float = 2e-3
    #: Retransmissions before the sender gives up on a frame (by then
    #: the failure detector has long declared the destination dead).
    max_retransmits: int = 16
    #: Wire size of one cumulative acknowledgement frame.
    ack_bytes: int = 16
    #: Wire size of one heartbeat frame.
    heartbeat_bytes: int = 32
    #: Fraction of the *other* monitored nodes the standby-side watcher
    #: must have heard from recently before it may declare the primary
    #: dead (quorum-of-survivors suspicion: a standby that has itself
    #: been partitioned away hears from nobody and must stay quiet
    #: rather than promote a second commit unit).
    quorum_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.quorum_fraction <= 1.0:
            raise ConfigurationError(
                f"quorum_fraction must be within [0, 1], got {self.quorum_fraction}"
            )
        if self.nodes < 1 or self.cores_per_node < 1:
            raise ConfigurationError(
                f"cluster must have at least one core: nodes={self.nodes}, "
                f"cores_per_node={self.cores_per_node}"
            )
        if self.clock_hz <= 0 or self.instructions_per_cycle <= 0:
            raise ConfigurationError("clock_hz and instructions_per_cycle must be positive")
        if self.queue_batch_bytes < self.word_bytes:
            raise ConfigurationError("queue_batch_bytes must hold at least one word")

    # -- derived quantities -------------------------------------------------

    @property
    def total_cores(self) -> int:
        """Total core count across the cluster."""
        return self.nodes * self.cores_per_node

    def instructions_to_seconds(self, instructions: float) -> float:
        """Time to retire ``instructions`` on one core."""
        return instructions / (self.instructions_per_cycle * self.clock_hz)

    def cycles_to_seconds(self, cycles: float) -> float:
        """Time for ``cycles`` core clock cycles."""
        return cycles / self.clock_hz

    def node_of_core(self, core_index: int) -> int:
        """Node that hosts global core index ``core_index``."""
        if not 0 <= core_index < self.total_cores:
            raise ConfigurationError(
                f"core index {core_index} out of range [0, {self.total_cores})"
            )
        return core_index // self.cores_per_node

    def same_node(self, core_a: int, core_b: int) -> bool:
        """True if two global core indices share a node."""
        return self.node_of_core(core_a) == self.node_of_core(core_b)

    def wire_parameters(self, src_core: int, dst_core: int) -> tuple[float, float]:
        """Return ``(latency_s, bandwidth_bps)`` for a src->dst transfer."""
        if self.same_node(src_core, dst_core):
            return self.intra_node_latency_s, self.intra_node_bandwidth_bps
        return self.inter_node_latency_s, self.inter_node_bandwidth_bps


#: The paper's evaluation platform: 32 nodes x 4 cores.
DEFAULT_CLUSTER = ClusterSpec()

#: A manycore without chip-wide cache coherence, in the mold of Intel's
#: 48-core message-passing processor the paper cites (section 2.3): the
#: same no-shared-memory programming model as a cluster, but with
#: on-chip mesh latencies and bandwidths.  The paper argues DSMTX "adds
#: great value to these platforms"; `bench_ablation_manycore.py`
#: measures it.  Modeled as 24 coherence domains of 2 cores joined by a
#: mesh: ~300x lower latency and ~6x more cross-domain bandwidth than
#: the InfiniBand cluster, with proportionally cheaper messaging calls.
SCC_LIKE = ClusterSpec(
    nodes=24,
    cores_per_node=2,
    clock_hz=1.0e9,
    inter_node_latency_s=7e-9,
    inter_node_bandwidth_bps=8.0e9,
    intra_node_latency_s=3e-9,
    intra_node_bandwidth_bps=25.0e9,
    mpi_recv_instructions=500,
    mpi_recv_ready_instructions=150,
    mpi_variant_sender_instructions={
        MPIVariant.SEND: 120,
        MPIVariant.BSEND: 400,
        MPIVariant.ISEND: 600,
    },
    queue_op_instructions=20,
)
