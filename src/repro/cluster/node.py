"""Nodes and cores of the simulated cluster.

A :class:`Core` is the execution resource a runtime unit (worker,
try-commit unit, commit unit) is pinned to.  Computation is expressed in
clock cycles or instructions; a core converts them to simulated time.

To keep the event count low, cores support *deferred* accounting: cheap
bookkeeping costs accumulate in a pending counter and are realized as a
single timeout when the owning process next blocks (see
:meth:`Core.drain`).  This changes nothing observable — the paper's
runtime similarly only pays overheads on its own thread — but cuts the
number of simulator events by an order of magnitude.
"""

from __future__ import annotations

from typing import Iterator

from repro.cluster.spec import ClusterSpec
from repro.sim import Environment, Event, Resource

__all__ = ["Core", "Node", "Machine"]


class Core:
    """One processor core, identified by a global index."""

    def __init__(self, env: Environment, spec: ClusterSpec, index: int) -> None:
        self.env = env
        self.spec = spec
        self.index = index
        self.node_index = spec.node_of_core(index)
        #: Exclusive-use resource; one slot because a core runs one thread.
        self.resource = Resource(env, capacity=1)
        #: Cycles of deferred (not yet realized) bookkeeping work.
        self.pending_cycles = 0.0
        #: Total busy cycles, realized + pending, for utilization stats.
        self.busy_cycles = 0.0
        # Divisors resolved once; compute/charge run per instruction
        # batch on the hot path.  Kept as divisors (not reciprocal
        # multipliers) so the float results stay bit-identical to
        # spec.cycles_to_seconds / instructions_to_seconds.
        self._clock_hz = spec.clock_hz
        self._ipc = spec.instructions_per_cycle

    # -- immediate costs -----------------------------------------------------

    def compute(self, cycles: float) -> Event:
        """Return an event realizing ``cycles`` of work right now."""
        if cycles < 0:
            raise ValueError(f"negative cycle count: {cycles}")
        self.busy_cycles += cycles
        return self.env.sleep(cycles / self._clock_hz)

    def execute_instructions(self, instructions: float) -> Event:
        """Return an event realizing ``instructions`` of work right now."""
        return self.compute(instructions / self._ipc)

    # -- deferred costs --------------------------------------------------------

    def charge_cycles(self, cycles: float) -> None:
        """Accumulate ``cycles`` of work to be realized at the next drain."""
        if cycles < 0:
            raise ValueError(f"negative cycle count: {cycles}")
        self.pending_cycles += cycles
        self.busy_cycles += cycles

    def charge_instructions(self, instructions: float) -> None:
        """Accumulate instruction cost to be realized at the next drain."""
        self.charge_cycles(instructions / self._ipc)

    def drain(self) -> tuple[Event, ...]:
        """Realize all pending cycles as simulated time.

        Returns a tuple of zero or one timeouts; drive with
        ``yield from core.drain()`` immediately before any blocking
        operation.  Returning a tuple instead of being a generator keeps
        the (very common) nothing-pending case free of generator
        allocation.
        """
        if self.pending_cycles > 0.0:
            cycles, self.pending_cycles = self.pending_cycles, 0.0
            return (self.env.sleep(cycles / self._clock_hz),)
        return ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Core {self.index} on node {self.node_index}>"


class Node:
    """One cluster node: a set of cores sharing a NIC and local memory."""

    def __init__(self, env: Environment, spec: ClusterSpec, index: int) -> None:
        self.env = env
        self.spec = spec
        self.index = index
        first = index * spec.cores_per_node
        self.cores = [Core(env, spec, first + i) for i in range(spec.cores_per_node)]
        #: NIC transmit and receive sides are independent (full duplex).
        self.nic_tx = Resource(env, capacity=1)
        self.nic_rx = Resource(env, capacity=1)
        #: Bytes sent/received through this node's NIC (stats).
        self.bytes_sent = 0
        self.bytes_received = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Node {self.index} with {len(self.cores)} cores>"


class Machine:
    """The whole simulated cluster: all nodes and cores, plus the spec."""

    def __init__(self, env: Environment, spec: ClusterSpec) -> None:
        self.env = env
        self.spec = spec
        self.nodes = [Node(env, spec, i) for i in range(spec.nodes)]
        # Flat global-index view; core() is a hot lookup in the MPI layer.
        self._cores = [core for node in self.nodes for core in node.cores]

    def core(self, index: int) -> Core:
        """Global core lookup."""
        if index < 0:
            raise IndexError(f"core index {index} out of range")
        return self._cores[index]

    def iter_cores(self) -> Iterator[Core]:
        """All cores in global index order."""
        for node in self.nodes:
            yield from node.cores

    @property
    def total_cores(self) -> int:
        return self.spec.total_cores
