"""DSMTX reproduction: Scalable Speculative Parallelization on Commodity Clusters.

A from-scratch Python implementation of the system described in
Kim, Raman, Liu, Lee, August — MICRO-43, 2010: the **Distributed
Software Multi-threaded Transactional memory** runtime (DSMTX), which
enables thread-level speculation (TLS) and speculative decoupled
software pipelining (Spec-DSWP) on message-passing clusters without
shared memory.

The package layers:

* :mod:`repro.sim` — discrete-event simulation kernel;
* :mod:`repro.cluster` — the 32-node/128-core commodity cluster model
  (cores, interconnect, MPI costs, batched DSMTX queues);
* :mod:`repro.memory` — paged address spaces, access protection, the
  Unified Virtual Address space, versioned buffers;
* :mod:`repro.core` — DSMTX itself: MTXs/subTXs, workers, the
  try-commit and commit units, Copy-On-Access, uncommitted value
  forwarding, group commit, and misspeculation recovery;
* :mod:`repro.paradigms` — PDGs, DSWP partitioning, plan notation, and
  the DOALL/DOACROSS/DSWP schedulers;
* :mod:`repro.workloads` — the 11 Table 2 benchmarks as workload models;
* :mod:`repro.baselines` — TLS-only cluster support and sequential
  execution;
* :mod:`repro.analysis` — speedup/bandwidth measurement and reporting.

Quickstart::

    from repro import DSMTXSystem, SystemConfig
    from repro.workloads import BlackScholes

    workload = BlackScholes()
    config = SystemConfig(total_cores=32)
    result = DSMTXSystem(workload.dsmtx_plan(), config).run()
    speedup = workload.sequential_seconds(config) / result.elapsed_seconds
"""

from repro.cluster import DEFAULT_CLUSTER, ClusterSpec, MPIVariant
from repro.core import (
    DSMTXSystem,
    PipelineConfig,
    RunResult,
    RunStats,
    StageKind,
    StageSpec,
    SystemConfig,
)
from repro.errors import ReproError
from repro.workloads import ParallelPlan, Workload

__version__ = "1.0.0"

__all__ = [
    "DSMTXSystem",
    "RunResult",
    "RunStats",
    "SystemConfig",
    "PipelineConfig",
    "StageSpec",
    "StageKind",
    "ClusterSpec",
    "DEFAULT_CLUSTER",
    "MPIVariant",
    "Workload",
    "ParallelPlan",
    "ReproError",
    "__version__",
]
