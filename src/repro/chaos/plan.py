"""Declarative fault plans for deterministic fault injection.

A :class:`FaultPlan` is an immutable description of *what goes wrong
and when* during a simulated run: node crashes, link-quality windows,
probabilistic message loss/duplication, and transient node stalls.
Because the simulation clock is virtual and the plan's randomness comes
from one seeded generator drawn in simulation order, the same plan
against the same workload produces byte-identical runs — fault
scenarios are reproducible test cases, not flaky ones.

Plans are either written explicitly (pinned regression scenarios) or
generated from a seed with :meth:`FaultPlan.random` (fuzzing sweeps).
The :class:`~repro.chaos.engine.ChaosEngine` executes a plan against an
:class:`~repro.sim.Environment`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from random import Random
from typing import Optional, Sequence

from repro.errors import ChaosError

__all__ = [
    "NodeCrash",
    "LinkDegrade",
    "NodeStall",
    "MessageLoss",
    "MessageDuplication",
    "MessageCorruption",
    "StateCorruption",
    "STATE_CORRUPTION_TARGETS",
    "FaultPlan",
]


@dataclass(frozen=True)
class NodeCrash:
    """Fail-stop crash of one node at ``at_s``.

    Every process hosted on the node stops mid-instruction, and all
    traffic to or from the node is dropped from that instant on —
    including messages already in flight (they reach a dead NIC).
    Requires the failure-aware runtime
    (``SystemConfig.fault_tolerance``) to be survivable.
    """

    node: int
    at_s: float


@dataclass(frozen=True)
class LinkDegrade:
    """Inter-node fabric degradation window.

    While active, every inter-node message pays ``latency_factor``
    times the latency and ``1/bandwidth_factor`` of the bandwidth —
    a congested or renegotiated-down link, not a partition.
    """

    at_s: float
    duration_s: float
    latency_factor: float = 4.0
    bandwidth_factor: float = 4.0


@dataclass(frozen=True)
class NodeStall:
    """Transient stall of one node's fabric connectivity.

    Messages to or from the node during the window are held back until
    the window closes (a GC-style or switch-buffer pause: nothing is
    lost, everything is late).  Shorter than the failure detector's
    suspicion timeout, this exercises the retransmit path without a
    failover; longer, it still does not kill the node — heartbeats are
    management-path traffic — so it models exactly the gray failure a
    lease-based detector must *not* misclassify.
    """

    node: int
    at_s: float
    duration_s: float


@dataclass(frozen=True)
class MessageLoss:
    """Drop each inter-node message with ``probability`` inside the
    window (default: the whole run).  Sender-side costs are still paid
    — the packets leave the NIC and die on the wire."""

    probability: float
    start_s: float = 0.0
    end_s: float = math.inf


@dataclass(frozen=True)
class MessageDuplication:
    """Deliver each inter-node message twice with ``probability``
    inside the window (a retransmit-happy fabric or a misbehaving
    switch)."""

    probability: float
    start_s: float = 0.0
    end_s: float = math.inf


@dataclass(frozen=True)
class MessageCorruption:
    """Silently flip one bit in each inter-node message's payload with
    ``probability`` inside the window (cheap NIC / cable-marginal bit
    errors that arrive without any error signal).  The corrupted copy is
    what the wire delivers; the sender's retransmit buffer keeps the
    intact original, so under ``SystemConfig.integrity`` detection
    converts the corruption into a loss the retransmit path repairs."""

    probability: float
    start_s: float = 0.0
    end_s: float = math.inf


#: Valid :attr:`StateCorruption.target` values, in docs order.
STATE_CORRUPTION_TARGETS = ("memory", "checkpoint", "speculative")


@dataclass(frozen=True)
class StateCorruption:
    """Flip one bit in ``words`` resident words at ``at_s`` (non-ECC
    memory).  ``target`` picks the victim state:

    * ``"memory"`` — committed words in the commit unit's master (the
      page-digest scrubber's detection case);
    * ``"checkpoint"`` — the standby's checkpoint image (promotion must
      *refuse* the corrupted image; requires commit replication);
    * ``"speculative"`` — clean committed words cached in a worker's
      space (value-based read validation detects the corrupt read and
      the ordinary misspeculation re-execution repairs it).
    """

    target: str
    at_s: float
    words: int = 1


def _is_finite_time(value: float) -> bool:
    """A usable schedule time: finite and non-negative (NaN fails)."""
    return math.isfinite(value) and value >= 0


_WINDOW_KINDS = (LinkDegrade, NodeStall)
_PROBABILISTIC_KINDS = (MessageLoss, MessageDuplication, MessageCorruption)
_ALL_KINDS = (NodeCrash, StateCorruption) + _WINDOW_KINDS + _PROBABILISTIC_KINDS


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seeded schedule of faults."""

    faults: tuple = ()
    #: Seed of the per-message random draws (loss/duplication).  Two
    #: runs of the same plan share every draw, in simulation order.
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            if not isinstance(fault, _ALL_KINDS):
                raise ChaosError(f"not a fault: {fault!r}")
            if isinstance(fault, NodeCrash):
                if not _is_finite_time(fault.at_s) or fault.node < 0:
                    raise ChaosError(f"invalid crash: {fault!r}")
            elif isinstance(fault, _WINDOW_KINDS):
                # NaN fails every comparison, so each bound is stated as
                # a *requirement* — a NaN-carrying window is rejected
                # instead of slipping past an inverted check.
                if not (
                    _is_finite_time(fault.at_s)
                    and math.isfinite(fault.duration_s)
                    and fault.duration_s > 0
                ):
                    raise ChaosError(
                        f"fault window needs a finite start and a positive "
                        f"finite duration: {fault!r}"
                    )
                if isinstance(fault, LinkDegrade) and not (
                    fault.latency_factor >= 1.0 and fault.bandwidth_factor >= 1.0
                ):
                    raise ChaosError(
                        f"degrade factors must be >= 1 (it is a *degradation*): {fault!r}"
                    )
            elif isinstance(fault, StateCorruption):
                if fault.target not in STATE_CORRUPTION_TARGETS:
                    known = ", ".join(STATE_CORRUPTION_TARGETS)
                    raise ChaosError(
                        f"unknown state-corruption target {fault.target!r}; "
                        f"did you mean one of: {known}?"
                    )
                if not _is_finite_time(fault.at_s):
                    raise ChaosError(
                        f"state corruption needs a finite schedule time: {fault!r}"
                    )
                if not isinstance(fault.words, int) or fault.words < 1:
                    raise ChaosError(
                        f"state corruption must flip at least one word: {fault!r}"
                    )
            else:
                probability = fault.probability
                # NaN fails every comparison, so the range is stated as
                # a requirement; 1.0 is excluded — a certainty is a
                # partition/fuzzer bug, not a fault model, and under
                # loss it would defeat even infinite retransmits.
                if not 0.0 <= probability < 1.0:
                    hint = (
                        "; probability 1.0 means *every* message — did you "
                        "mean 0.999?"
                        if probability == 1.0
                        else ""
                    )
                    raise ChaosError(
                        f"probability outside [0, 1): {fault!r}{hint}"
                    )
                if not (_is_finite_time(fault.start_s) and fault.end_s > fault.start_s):
                    raise ChaosError(f"empty fault window: {fault!r}")
        self._reject_overlapping_degrades()

    def _reject_overlapping_degrades(self) -> None:
        """Overlapping degradation windows on the same fabric compound
        their factors in engine-iteration order — an effect nobody asked
        for, and one that silently changes when the plan is reordered.
        Sequential (even back-to-back) windows are fine; overlap is a
        plan bug."""
        windows = sorted(
            (f for f in self.faults if isinstance(f, LinkDegrade)),
            key=lambda f: (f.at_s, f.duration_s),
        )
        for earlier, later in zip(windows, windows[1:]):
            if later.at_s < earlier.at_s + earlier.duration_s:
                raise ChaosError(
                    f"overlapping link-degradation windows: {earlier!r} is "
                    f"still active when {later!r} starts; merge them into "
                    f"one window with the intended combined factors"
                )

    @property
    def crashes(self) -> tuple:
        return tuple(f for f in self.faults if isinstance(f, NodeCrash))

    @property
    def state_corruptions(self) -> tuple:
        return tuple(f for f in self.faults if isinstance(f, StateCorruption))

    @property
    def needs_random_draws(self) -> bool:
        """True if the plan consumes per-message random draws."""
        return any(isinstance(f, _PROBABILISTIC_KINDS) for f in self.faults)

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        nodes: int,
        horizon_s: float,
        crashes: int = 1,
        degrade_windows: int = 0,
        stalls: int = 0,
        loss: float = 0.0,
        duplication: float = 0.0,
        corruption: float = 0.0,
        state_corruptions: int = 0,
        crashable_nodes: Optional[Sequence[int]] = None,
    ) -> "FaultPlan":
        """Seeded pseudo-random plan over a ``horizon_s`` run estimate.

        Crash times land in the middle [20%, 70%] of the horizon so the
        run is neither trivially fault-free nor dead on arrival.
        ``crashable_nodes`` restricts the crash victims (by default
        every node but node 0, which conventionally hosts the commit
        unit under the pack placement).
        """
        if nodes < 2:
            raise ChaosError("a fault plan needs at least two nodes to be interesting")
        if horizon_s <= 0:
            raise ChaosError(f"horizon must be positive, got {horizon_s}")
        rng = Random(seed)
        faults: list = []
        pool = list(
            crashable_nodes if crashable_nodes is not None else range(1, nodes)
        )
        for _ in range(crashes):
            if not pool:
                break
            node = pool.pop(rng.randrange(len(pool)))
            faults.append(
                NodeCrash(node=node, at_s=rng.uniform(0.2, 0.7) * horizon_s)
            )
        degrades = sorted(
            (
                rng.uniform(0.0, 0.8) * horizon_s,
                rng.uniform(0.05, 0.2) * horizon_s,
                rng.uniform(2.0, 8.0),
                rng.uniform(2.0, 8.0),
            )
            for _ in range(degrade_windows)
        )
        cursor = 0.0
        for at_s, duration_s, latency_factor, bandwidth_factor in degrades:
            # Overlapping windows are a plan error (factors would
            # compound); push each window past the previous one's end.
            at_s = max(at_s, cursor)
            cursor = at_s + duration_s
            faults.append(
                LinkDegrade(
                    at_s=at_s,
                    duration_s=duration_s,
                    latency_factor=latency_factor,
                    bandwidth_factor=bandwidth_factor,
                )
            )
        for _ in range(stalls):
            faults.append(
                NodeStall(
                    node=rng.randrange(nodes),
                    at_s=rng.uniform(0.0, 0.8) * horizon_s,
                    duration_s=rng.uniform(0.02, 0.1) * horizon_s,
                )
            )
        if loss:
            faults.append(MessageLoss(probability=loss))
        if duplication:
            faults.append(MessageDuplication(probability=duplication))
        if corruption:
            faults.append(MessageCorruption(probability=corruption))
        for _ in range(state_corruptions):
            # Committed-memory flips land mid-run like the crashes do;
            # "memory" is the only target every configuration can host.
            faults.append(
                StateCorruption(
                    target="memory", at_s=rng.uniform(0.2, 0.7) * horizon_s
                )
            )
        return cls(faults=tuple(faults), seed=seed)

    def describe(self) -> str:
        """One line per fault, in schedule order."""
        if not self.faults:
            return "fault-free"
        lines = []
        for fault in sorted(
            self.faults, key=lambda f: getattr(f, "at_s", getattr(f, "start_s", 0.0))
        ):
            lines.append(repr(fault))
        return "\n".join(lines)
