"""Deterministic execution of a :class:`~repro.chaos.plan.FaultPlan`.

The engine attaches to a simulation :class:`~repro.sim.Environment` as
``env.chaos`` and intervenes at exactly two kinds of points:

* **the wire** — the interconnect's inter-node send paths consult
  :meth:`ChaosEngine.on_wire` once per inter-node message, in simulation
  order, and obey the verdict: deliver (possibly with degraded wire
  parameters), drop, or duplicate.  Intra-node traffic is never touched
  — faults here model the *cluster fabric*, not shared memory.
* **the clock** — node crashes are scheduled as bare simulation
  callbacks at their plan time; executing one interrupts every process
  registered on the node and marks the node dead, which in turn drops
  all of its in-flight and future wire traffic.

Determinism: the only randomness (per-message loss/duplication draws)
comes from one ``random.Random(plan.seed)`` consumed in the simulation's
deterministic message order, and the simulated clock is virtual, so the
same (workload, config, plan) triple always produces the same run —
crash timing, retransmit counts, recovery latency and all.

When no engine is attached, ``env.chaos`` is ``None`` and every hook
site pays one is-None check (the obs-layer pattern).
"""

from __future__ import annotations

from random import Random
from typing import Any, Optional

from repro.chaos.plan import (
    FaultPlan,
    LinkDegrade,
    MessageCorruption,
    MessageDuplication,
    MessageLoss,
    NodeCrash,
    NodeStall,
    StateCorruption,
)
from repro.errors import ChaosError, ClusterFailedError, NodeCrashed

__all__ = ["ChaosEngine", "DELIVER", "DROP", "DUPLICATE", "CORRUPT"]

#: :meth:`ChaosEngine.on_wire` verdicts.
DELIVER = 0
DROP = 1
DUPLICATE = 2
#: Deliver a silently corrupted *copy* of the payload (the sender's
#: retransmit buffer keeps the intact original).
CORRUPT = 3


class ChaosEngine:
    """Executes one fault plan against one simulated run."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = Random(plan.seed)
        self.env = None
        self._system = None
        self._commit_node: Optional[int] = None
        #: Nodes killed so far, in crash order.
        self.dead_nodes: set[int] = set()
        #: (node, at_s) of executed crashes.
        self.crash_log: list[tuple[int, float]] = []
        # Counters (mirrored into RunStats when bound to a system).
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.messages_delayed = 0
        self.messages_corrupted = 0
        #: (target, at_s, words_flipped) of executed state corruptions.
        self.state_corruption_log: list[tuple[str, float, int]] = []
        # Pre-split fault schedule for the hot path.
        faults = plan.faults
        self._crashes = sorted(
            (f for f in faults if isinstance(f, NodeCrash)),
            key=lambda f: (f.at_s, f.node),
        )
        self._degrades = tuple(f for f in faults if isinstance(f, LinkDegrade))
        self._stalls = tuple(f for f in faults if isinstance(f, NodeStall))
        self._losses = tuple(f for f in faults if isinstance(f, MessageLoss))
        self._dups = tuple(f for f in faults if isinstance(f, MessageDuplication))
        self._corruptions = tuple(
            f for f in faults if isinstance(f, MessageCorruption)
        )
        self._state_corruptions = sorted(
            (f for f in faults if isinstance(f, StateCorruption)),
            key=lambda f: (f.at_s, f.target),
        )

    # -- lifecycle -----------------------------------------------------------

    def attach(self, env) -> "ChaosEngine":
        """Install on ``env`` and schedule the plan's crashes."""
        if self.env is not None:
            raise ChaosError("a ChaosEngine executes exactly one run; make a new one")
        if env.chaos is not None:
            raise ChaosError("environment already has a chaos engine attached")
        self.env = env
        env.chaos = self
        for fault in self._crashes:
            if fault.at_s < env.now:
                raise ChaosError(
                    f"crash scheduled in the past ({fault.at_s} < now={env.now})"
                )
            env.sleep(fault.at_s - env.now).callbacks.append(
                lambda _event, f=fault: self._execute_crash(f)
            )
        for fault in self._state_corruptions:
            if fault.at_s < env.now:
                raise ChaosError(
                    f"state corruption scheduled in the past "
                    f"({fault.at_s} < now={env.now})"
                )
            env.sleep(fault.at_s - env.now).callbacks.append(
                lambda _event, f=fault: self._execute_state_corruption(f)
            )
        return self

    def bind_system(self, system) -> None:
        """Called by :meth:`DSMTXSystem.run`: learn the unit layout so
        crashes can be targeted, and validate survivability."""
        self._system = system
        self._commit_node = system.cluster.node_of_core(
            system._core_indices[system.commit_tid]
        )
        if self._crashes and not system.config.fault_tolerance:
            raise ChaosError(
                "the plan crashes nodes but SystemConfig.fault_tolerance is off; "
                "the runtime would hang waiting for the dead units"
            )
        if any(
            f.target == "checkpoint" for f in self._state_corruptions
        ) and not system.config.commit_replication:
            raise ChaosError(
                'the plan corrupts a checkpoint image but there is no '
                'standby to hold one; set commit_replication=True (did '
                'you mean target="memory"?)'
            )

    # -- the clock: node crashes ---------------------------------------------

    def _execute_crash(self, fault: NodeCrash) -> None:
        node = fault.node
        if node in self.dead_nodes:
            return
        self.dead_nodes.add(node)
        self.crash_log.append((node, self.env.now))
        system = self._system
        if system is None:
            return  # wire-only chaos on a bare environment
        # Resolved at crash time, not bind time: a standby promotion
        # moves the commit unit to a different node mid-run.
        commit_node = system.cluster.node_of_core(
            system._core_indices[system.commit_tid]
        )
        if node == commit_node and not self._standby_survives():
            # The commit unit holds the only copy of committed master
            # memory — and the failure detector lives with it, so
            # nothing is left to even declare the failure.  Fail the
            # run at the point of impact instead of hanging.  With a
            # live hot standby (commit replication) the crash proceeds
            # normally: the standby-side watcher declares it and the
            # standby is promoted.
            raise ClusterFailedError(
                f"node {node} hosted the commit unit (master memory); "
                f"the cluster cannot recover without a live commit standby"
            )
        if system.obs is not None:
            from repro.obs.tracer import CAT_CHAOS, PID_CLUSTER

            system.obs.tracer.instant(
                CAT_CHAOS, f"crash:node{node}", PID_CLUSTER,
                system.cluster.cores_per_node * node, node=node,
            )
            system.obs.metrics.counter("chaos.crashes").inc()
        cause = NodeCrashed(node)
        for process in system.processes_on_node(node):
            if process.is_alive:
                process.interrupt(cause)

    def _standby_survives(self) -> bool:
        """True when a hot commit standby exists and its node is alive
        (the commit-node crash is then survivable via promotion)."""
        system = self._system
        standby_tid = system.standby_tid
        if standby_tid is None or standby_tid in system.dead_tids:
            return False
        standby_node = system.cluster.node_of_core(
            system._core_indices[standby_tid]
        )
        return standby_node not in self.dead_nodes

    def is_dead_node(self, node: int) -> bool:
        return node in self.dead_nodes

    # -- the clock: silent state corruption ----------------------------------

    def _execute_state_corruption(self, fault: StateCorruption) -> None:
        """Flip bits in resident words of the targeted state, bypassing
        all bookkeeping — non-ECC memory updates no dirty masks and no
        digest tables, which is exactly what makes it *silent*."""
        system = self._system
        if system is None:
            return  # wire-only chaos on a bare environment
        target = fault.target
        spaces: list = []
        dirty_ok = True
        if target == "memory":
            commit = getattr(system, "commit", None)
            if commit is not None:
                spaces.append(commit.master)
        elif target == "checkpoint":
            standby = getattr(system, "standby", None)
            if standby is not None and not standby.promoted:
                spaces.append(standby.image)
        else:  # "speculative"
            # Only *clean* committed words cached in a worker space: a
            # later read of one is validated against master and caught;
            # flipping a dirty (speculatively written) word would commit
            # the corruption — that is the "memory" target's job.
            dirty_ok = False
            dead = system.dead_tids
            spaces.extend(
                worker.space
                for worker in getattr(system, "workers", ())
                if worker.tid not in dead
            )
        flipped = self._flip_resident_words(spaces, fault.words, dirty_ok)
        self.state_corruption_log.append((target, self.env.now, flipped))
        if system.obs is not None:
            from repro.obs.tracer import CAT_CHAOS, PID_RUNTIME

            system.obs.tracer.instant(
                CAT_CHAOS, f"state_corruption:{target}", PID_RUNTIME, -1,
                target=target, words=flipped,
            )
            system.obs.metrics.counter("chaos.state_corruptions").inc(flipped)

    def _flip_resident_words(self, spaces, words: int, dirty_ok: bool) -> int:
        """Flip one bit in up to ``words`` resident integer words drawn
        uniformly from ``spaces``; returns how many were flipped."""
        rng = self._rng
        candidates: list = []
        for space in spaces:
            for page in space.iter_pages():
                dirty_mask = page.dirty_mask
                for index, value in page.items():
                    if not isinstance(value, int) or isinstance(value, bool):
                        continue
                    if not dirty_ok and (dirty_mask >> index) & 1:
                        continue
                    candidates.append((page, index))
        flipped = 0
        for _ in range(min(words, len(candidates))):
            page, index = candidates.pop(rng.randrange(len(candidates)))
            # Straight into the word array: Page.write would update the
            # masks, and honest bookkeeping is what corruption lacks.
            page.words[index] ^= 1 << rng.randrange(16)
            flipped += 1
        return flipped

    # -- the wire ------------------------------------------------------------

    def on_wire(
        self, src_node: int, dst_node: int, latency: float, bandwidth: float
    ) -> tuple[int, float, float]:
        """Adjudicate one inter-node message about to enter the wire.

        Returns ``(verdict, latency, bandwidth)``; the send path obeys
        the verdict and uses the (possibly degraded) wire parameters.
        Called in simulation order, which is what keeps the per-message
        random draws reproducible.
        """
        dead = self.dead_nodes
        if dead and (src_node in dead or dst_node in dead):
            self.messages_dropped += 1
            return DROP, latency, bandwidth
        now = self.env.now
        for window in self._degrades:
            if window.at_s <= now < window.at_s + window.duration_s:
                latency *= window.latency_factor
                bandwidth /= window.bandwidth_factor
                self.messages_delayed += 1
        for stall in self._stalls:
            end = stall.at_s + stall.duration_s
            if stall.at_s <= now < end and (
                src_node == stall.node or dst_node == stall.node
            ):
                # Held in a stalled NIC until the window closes.
                latency += end - now
                self.messages_delayed += 1
        for loss in self._losses:
            if loss.start_s <= now < loss.end_s:
                if self._rng.random() < loss.probability:
                    self.messages_dropped += 1
                    return DROP, latency, bandwidth
        for dup in self._dups:
            if dup.start_s <= now < dup.end_s:
                if self._rng.random() < dup.probability:
                    self.messages_duplicated += 1
                    return DUPLICATE, latency, bandwidth
        # Corruption draws come last so plans without corruption faults
        # consume exactly the draw sequence they always did.
        for corruption in self._corruptions:
            if corruption.start_s <= now < corruption.end_s:
                if self._rng.random() < corruption.probability:
                    return CORRUPT, latency, bandwidth
        return DELIVER, latency, bandwidth

    def corrupt_payload(self, payload: Any) -> Any:
        """Build the corrupted *copy* a ``CORRUPT`` verdict delivers.

        One integer value leaf gets one bit flipped — always a carried
        value, never an address, kind tag, or sequence number, so an
        unprotected run completes with silently wrong results instead of
        crashing the simulator.  The copy matters: the sender's
        retransmit buffer aliases the original frame, and the repair
        story depends on retransmissions arriving intact.  A payload
        with no corruptible leaf is returned unchanged and uncounted.
        """
        corrupted = _corrupt_copy(payload, self._rng)
        if corrupted is None:
            return payload
        self.messages_corrupted += 1
        system = self._system
        if system is not None and system.obs is not None:
            from repro.obs.tracer import CAT_CHAOS, PID_CLUSTER

            system.obs.tracer.instant(
                CAT_CHAOS, "message_corruption", PID_CLUSTER, 0,
            )
            system.obs.metrics.counter("chaos.messages_corrupted").inc()
        return corrupted

    # -- reporting -----------------------------------------------------------

    def summary(self) -> dict:
        """Counters of what the engine actually did this run.

        Corruption keys appear only when the plan contains corruption
        faults: absent features leave no trace, so pre-existing plans
        keep their pinned summaries and fingerprints byte-identical.
        """
        out = {
            "crashes": list(self.crash_log),
            "dead_nodes": sorted(self.dead_nodes),
            "messages_dropped": self.messages_dropped,
            "messages_duplicated": self.messages_duplicated,
            "messages_delayed": self.messages_delayed,
        }
        if self._corruptions:
            out["messages_corrupted"] = self.messages_corrupted
        if self._state_corruptions:
            out["state_corruptions"] = list(self.state_corruption_log)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ChaosEngine dead={sorted(self.dead_nodes)} "
            f"dropped={self.messages_dropped} duplicated={self.messages_duplicated}>"
        )


# -- corrupted-copy construction ---------------------------------------------
#
# The flippable positions are *value* leaves only.  Addresses, kind
# tags, iteration numbers, and sequence numbers stay intact: corrupting
# those would crash an unprotected run (unmapped page) or wedge it
# (a lost VAL notice), where a flipped value lets it run to completion
# with divergent results — the failure mode the integrity layer exists
# to catch.

def _flip_int(value: int, rng) -> int:
    return value ^ (1 << rng.randrange(16))


def _value_leaf_positions(entries) -> list:
    """Flippable positions in a batch: ``(entry_index, element_index)``
    with element_index ``None`` for scalar-value entries."""
    from repro.core.messages import DATA, READ, READ_BLOCK, WRITE, WRITE_BLOCK

    positions = []
    for i, entry in enumerate(entries):
        kind = entry[0]
        if kind in (WRITE, READ, DATA):
            if len(entry) > 2 and isinstance(entry[2], int):
                positions.append((i, None))
        elif kind in (WRITE_BLOCK, READ_BLOCK):
            for j, value in enumerate(entry[2]):
                if isinstance(value, int):
                    positions.append((i, j))
    return positions


def _corrupt_copy(payload, rng):
    """A copy of ``payload`` with one value-leaf bit flipped, or
    ``None`` when it holds no corruptible leaf."""
    from repro.core.messages import (
        CTL_COA_RESPONSE,
        BatchEnvelope,
        ControlEnvelope,
        Frame,
    )

    if isinstance(payload, Frame):
        # Corrupt the carried envelope; the stamped checksum rides along
        # unrecomputed, which is what lets the receiver notice.
        inner = _corrupt_copy(payload.payload, rng)
        return None if inner is None else payload._replace(payload=inner)
    if isinstance(payload, BatchEnvelope):
        positions = _value_leaf_positions(payload.entries)
        if not positions:
            return None
        i, j = positions[rng.randrange(len(positions))]
        entries = list(payload.entries)
        entry = entries[i]
        if j is None:
            entries[i] = entry[:2] + (_flip_int(entry[2], rng),) + entry[3:]
        else:
            values = list(entry[2])
            values[j] = _flip_int(values[j], rng)
            entries[i] = entry[:2] + (values,) + entry[3:]
        return payload._replace(entries=tuple(entries))
    if isinstance(payload, ControlEnvelope):
        if payload.kind != CTL_COA_RESPONSE or len(payload.payload) != 3:
            return None
        page_no, word_index, content = payload.payload
        if word_index is not None:
            if not isinstance(content, int):
                return None
            flipped = _flip_int(content, rng)
            return payload._replace(payload=(page_no, word_index, flipped))
        # A whole-page snapshot: flip one present word in a fresh copy.
        items = [
            (index, value)
            for index, value in content.items()
            if isinstance(value, int) and not isinstance(value, bool)
        ]
        if not items:
            return None
        snapshot = content.snapshot()
        index, value = items[rng.randrange(len(items))]
        snapshot.words[index] = _flip_int(value, rng)
        return payload._replace(payload=(page_no, None, snapshot))
    if isinstance(payload, list):
        # A stand-alone Channel batch: plain values on the wire.
        positions = [
            i
            for i, value in enumerate(payload)
            if isinstance(value, int) and not isinstance(value, bool)
        ]
        if not positions:
            return None
        copy = list(payload)
        i = positions[rng.randrange(len(positions))]
        copy[i] = _flip_int(copy[i], rng)
        return copy
    return None
