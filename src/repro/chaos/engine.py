"""Deterministic execution of a :class:`~repro.chaos.plan.FaultPlan`.

The engine attaches to a simulation :class:`~repro.sim.Environment` as
``env.chaos`` and intervenes at exactly two kinds of points:

* **the wire** — the interconnect's inter-node send paths consult
  :meth:`ChaosEngine.on_wire` once per inter-node message, in simulation
  order, and obey the verdict: deliver (possibly with degraded wire
  parameters), drop, or duplicate.  Intra-node traffic is never touched
  — faults here model the *cluster fabric*, not shared memory.
* **the clock** — node crashes are scheduled as bare simulation
  callbacks at their plan time; executing one interrupts every process
  registered on the node and marks the node dead, which in turn drops
  all of its in-flight and future wire traffic.

Determinism: the only randomness (per-message loss/duplication draws)
comes from one ``random.Random(plan.seed)`` consumed in the simulation's
deterministic message order, and the simulated clock is virtual, so the
same (workload, config, plan) triple always produces the same run —
crash timing, retransmit counts, recovery latency and all.

When no engine is attached, ``env.chaos`` is ``None`` and every hook
site pays one is-None check (the obs-layer pattern).
"""

from __future__ import annotations

from random import Random
from typing import Any, Optional

from repro.chaos.plan import (
    FaultPlan,
    LinkDegrade,
    MessageDuplication,
    MessageLoss,
    NodeCrash,
    NodeStall,
)
from repro.errors import ChaosError, ClusterFailedError, NodeCrashed

__all__ = ["ChaosEngine", "DELIVER", "DROP", "DUPLICATE"]

#: :meth:`ChaosEngine.on_wire` verdicts.
DELIVER = 0
DROP = 1
DUPLICATE = 2


class ChaosEngine:
    """Executes one fault plan against one simulated run."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = Random(plan.seed)
        self.env = None
        self._system = None
        self._commit_node: Optional[int] = None
        #: Nodes killed so far, in crash order.
        self.dead_nodes: set[int] = set()
        #: (node, at_s) of executed crashes.
        self.crash_log: list[tuple[int, float]] = []
        # Counters (mirrored into RunStats when bound to a system).
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.messages_delayed = 0
        # Pre-split fault schedule for the hot path.
        faults = plan.faults
        self._crashes = sorted(
            (f for f in faults if isinstance(f, NodeCrash)),
            key=lambda f: (f.at_s, f.node),
        )
        self._degrades = tuple(f for f in faults if isinstance(f, LinkDegrade))
        self._stalls = tuple(f for f in faults if isinstance(f, NodeStall))
        self._losses = tuple(f for f in faults if isinstance(f, MessageLoss))
        self._dups = tuple(f for f in faults if isinstance(f, MessageDuplication))

    # -- lifecycle -----------------------------------------------------------

    def attach(self, env) -> "ChaosEngine":
        """Install on ``env`` and schedule the plan's crashes."""
        if self.env is not None:
            raise ChaosError("a ChaosEngine executes exactly one run; make a new one")
        if env.chaos is not None:
            raise ChaosError("environment already has a chaos engine attached")
        self.env = env
        env.chaos = self
        for fault in self._crashes:
            if fault.at_s < env.now:
                raise ChaosError(
                    f"crash scheduled in the past ({fault.at_s} < now={env.now})"
                )
            env.sleep(fault.at_s - env.now).callbacks.append(
                lambda _event, f=fault: self._execute_crash(f)
            )
        return self

    def bind_system(self, system) -> None:
        """Called by :meth:`DSMTXSystem.run`: learn the unit layout so
        crashes can be targeted, and validate survivability."""
        self._system = system
        self._commit_node = system.cluster.node_of_core(
            system._core_indices[system.commit_tid]
        )
        if self._crashes and not system.config.fault_tolerance:
            raise ChaosError(
                "the plan crashes nodes but SystemConfig.fault_tolerance is off; "
                "the runtime would hang waiting for the dead units"
            )

    # -- the clock: node crashes ---------------------------------------------

    def _execute_crash(self, fault: NodeCrash) -> None:
        node = fault.node
        if node in self.dead_nodes:
            return
        self.dead_nodes.add(node)
        self.crash_log.append((node, self.env.now))
        system = self._system
        if system is None:
            return  # wire-only chaos on a bare environment
        # Resolved at crash time, not bind time: a standby promotion
        # moves the commit unit to a different node mid-run.
        commit_node = system.cluster.node_of_core(
            system._core_indices[system.commit_tid]
        )
        if node == commit_node and not self._standby_survives():
            # The commit unit holds the only copy of committed master
            # memory — and the failure detector lives with it, so
            # nothing is left to even declare the failure.  Fail the
            # run at the point of impact instead of hanging.  With a
            # live hot standby (commit replication) the crash proceeds
            # normally: the standby-side watcher declares it and the
            # standby is promoted.
            raise ClusterFailedError(
                f"node {node} hosted the commit unit (master memory); "
                f"the cluster cannot recover without a live commit standby"
            )
        if system.obs is not None:
            from repro.obs.tracer import CAT_CHAOS, PID_CLUSTER

            system.obs.tracer.instant(
                CAT_CHAOS, f"crash:node{node}", PID_CLUSTER,
                system.cluster.cores_per_node * node, node=node,
            )
            system.obs.metrics.counter("chaos.crashes").inc()
        cause = NodeCrashed(node)
        for process in system.processes_on_node(node):
            if process.is_alive:
                process.interrupt(cause)

    def _standby_survives(self) -> bool:
        """True when a hot commit standby exists and its node is alive
        (the commit-node crash is then survivable via promotion)."""
        system = self._system
        standby_tid = system.standby_tid
        if standby_tid is None or standby_tid in system.dead_tids:
            return False
        standby_node = system.cluster.node_of_core(
            system._core_indices[standby_tid]
        )
        return standby_node not in self.dead_nodes

    def is_dead_node(self, node: int) -> bool:
        return node in self.dead_nodes

    # -- the wire ------------------------------------------------------------

    def on_wire(
        self, src_node: int, dst_node: int, latency: float, bandwidth: float
    ) -> tuple[int, float, float]:
        """Adjudicate one inter-node message about to enter the wire.

        Returns ``(verdict, latency, bandwidth)``; the send path obeys
        the verdict and uses the (possibly degraded) wire parameters.
        Called in simulation order, which is what keeps the per-message
        random draws reproducible.
        """
        dead = self.dead_nodes
        if dead and (src_node in dead or dst_node in dead):
            self.messages_dropped += 1
            return DROP, latency, bandwidth
        now = self.env.now
        for window in self._degrades:
            if window.at_s <= now < window.at_s + window.duration_s:
                latency *= window.latency_factor
                bandwidth /= window.bandwidth_factor
                self.messages_delayed += 1
        for stall in self._stalls:
            end = stall.at_s + stall.duration_s
            if stall.at_s <= now < end and (
                src_node == stall.node or dst_node == stall.node
            ):
                # Held in a stalled NIC until the window closes.
                latency += end - now
                self.messages_delayed += 1
        for loss in self._losses:
            if loss.start_s <= now < loss.end_s:
                if self._rng.random() < loss.probability:
                    self.messages_dropped += 1
                    return DROP, latency, bandwidth
        for dup in self._dups:
            if dup.start_s <= now < dup.end_s:
                if self._rng.random() < dup.probability:
                    self.messages_duplicated += 1
                    return DUPLICATE, latency, bandwidth
        return DELIVER, latency, bandwidth

    # -- reporting -----------------------------------------------------------

    def summary(self) -> dict:
        """Counters of what the engine actually did this run."""
        return {
            "crashes": list(self.crash_log),
            "dead_nodes": sorted(self.dead_nodes),
            "messages_dropped": self.messages_dropped,
            "messages_duplicated": self.messages_duplicated,
            "messages_delayed": self.messages_delayed,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ChaosEngine dead={sorted(self.dead_nodes)} "
            f"dropped={self.messages_dropped} duplicated={self.messages_duplicated}>"
        )
