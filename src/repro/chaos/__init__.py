"""Deterministic fault injection for the simulated cluster.

``repro.chaos`` turns failure handling from a hoped-for property into a
tested one: a seeded :class:`FaultPlan` describes node crashes, link
degradation windows, probabilistic message loss/duplication, and
transient stalls, and a :class:`ChaosEngine` executes the plan against a
run with bit-for-bit reproducibility — the simulated clock is virtual
and all randomness flows from the plan's seed in simulation order.

Typical use (see ``docs/RESILIENCE.md``)::

    from repro.chaos import ChaosEngine, FaultPlan, NodeCrash

    plan = FaultPlan(faults=(NodeCrash(node=1, at_s=0.005),), seed=7)
    system = DSMTXSystem(workload, config)        # fault_tolerance=True
    ChaosEngine(plan).attach(system.env)
    result = system.run()                          # crashes, recovers
"""

from repro.chaos.engine import CORRUPT, DELIVER, DROP, DUPLICATE, ChaosEngine
from repro.chaos.plan import (
    STATE_CORRUPTION_TARGETS,
    FaultPlan,
    LinkDegrade,
    MessageCorruption,
    MessageDuplication,
    MessageLoss,
    NodeCrash,
    NodeStall,
    StateCorruption,
)

__all__ = [
    "ChaosEngine",
    "FaultPlan",
    "NodeCrash",
    "LinkDegrade",
    "NodeStall",
    "MessageLoss",
    "MessageDuplication",
    "MessageCorruption",
    "StateCorruption",
    "STATE_CORRUPTION_TARGETS",
    "DELIVER",
    "DROP",
    "DUPLICATE",
    "CORRUPT",
]
