"""Baselines the paper compares against: TLS-only cluster support and
the single-core sequential execution the speedups are normalized to."""

from repro.baselines.tls_only import compare_schemes, run_dsmtx, run_tls

__all__ = ["run_tls", "run_dsmtx", "compare_schemes"]
