"""TLS-only cluster support (the paper's comparison baseline).

The paper compares DSMTX against "our implementation of TLS-only support
for clusters" (section 1): thread-level speculation where every loop
iteration is a *single-threaded* transaction, parallelized per the
Steffan/Zhai algorithms — minmax reduction, accumulator expansion, and
compiler-inserted synchronization (forwarding) for the loop-carried
scalars that cannot be speculated away.

Because an MTX with only one subTX degenerates to a single-threaded
transaction (section 2.2), the TLS runtime is the DSMTX machinery run
with a one-stage pipeline: workers execute whole iterations round-robin,
the try-commit unit validates them in order, and the commit unit applies
them in order.  What distinguishes TLS behaviourally is in the
workloads' TLS plans: synchronized dependences chain values from each
iteration's worker to the next (``ctx.sync_send``/``sync_recv``), the
cyclic DOACROSS-like pattern that puts wire latency on the critical path
and caps TLS scalability (sections 2.1, 5.2).
"""

from __future__ import annotations

from typing import Optional

from repro.core import DSMTXSystem, RunResult, SystemConfig
from repro.errors import ConfigurationError

__all__ = ["run_tls", "run_dsmtx", "compare_schemes"]


def run_tls(workload, config: SystemConfig,
            iterations: Optional[int] = None) -> RunResult:
    """Run a workload's TLS parallelization at the configured core count."""
    plan = workload.tls_plan()
    if plan.scheme != "tls":
        raise ConfigurationError(f"{workload.name} returned a non-TLS plan")
    system = DSMTXSystem(plan, config)
    return system.run(iterations)


def run_dsmtx(workload, config: SystemConfig,
              iterations: Optional[int] = None) -> RunResult:
    """Run a workload's best DSMTX parallelization (Spec-DSWP/Spec-DOALL)."""
    system = DSMTXSystem(workload.dsmtx_plan(), config)
    return system.run(iterations)


def compare_schemes(workload_factory, config: SystemConfig) -> dict:
    """Run both schemes on fresh workload instances and report speedups.

    Returns ``{"dsmtx": speedup, "tls": speedup, "best": ...}`` — the
    per-benchmark comparison underlying Figure 4.
    """
    sequential_seconds = workload_factory().sequential_seconds(config)
    dsmtx_result = run_dsmtx(workload_factory(), config)
    tls_result = run_tls(workload_factory(), config)
    dsmtx_speedup = sequential_seconds / dsmtx_result.elapsed_seconds
    tls_speedup = sequential_seconds / tls_result.elapsed_seconds
    return {
        "dsmtx": dsmtx_speedup,
        "tls": tls_speedup,
        "best": max(dsmtx_speedup, tls_speedup),
        "sequential_seconds": sequential_seconds,
    }
