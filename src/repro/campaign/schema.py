"""Declarative scenario schema for campaign sweeps.

A *campaign* is a JSON or YAML document describing a grid of runs: a
set of base scenarios, a dictionary of sweep *axes* (field -> list of
values), and shared defaults.  Loading a campaign validates every
field — unknown keys, wrong types, and out-of-range values are
rejected with an error naming the exact path inside the document —
and :meth:`CampaignSpec.expand` multiplies the bases by the axes into
concrete, fully-resolved :class:`ScenarioSpec` objects.

Each resolved scenario is identified by its **scenario digest**: the
sha256 of its canonical dump.  Two campaign files that expand to the
same scenario produce the same digest, which is what lets the results
store match runs across campaigns (``repro campaign diff``) and what
the determinism tests pin (same digest -> byte-identical result
record, whatever the worker count).

The field reference, with defaults and validation rules, lives in
``docs/CAMPAIGNS.md``; ``scenarios/`` holds curated examples.
"""

from __future__ import annotations

import difflib
import hashlib
import itertools
import json
import warnings
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Optional, Union

from repro.errors import CampaignError, CampaignValidationWarning

__all__ = [
    "FaultSpec",
    "ExpectationSpec",
    "ScenarioSpec",
    "CampaignSpec",
    "load_campaign",
    "loads_campaign",
    "scenario_digest",
]

#: Schemes a scenario may select: the two DSMTX-runtime plans
#: (``dsmtx_plan`` / ``tls_plan``) and the deterministic-reservations
#: runtime (``specfor`` — :class:`repro.paradigms.SpecForSystem`).
SCHEMES = ("dsmtx", "tls", "specfor")
#: Placement policies understood by :class:`repro.core.SystemConfig`.
PLACEMENTS = ("pack", "spread")

#: Fault fields that only take effect under the failure-aware runtime
#: (``fault_tolerance: true``): crashes need degraded-mode restart to be
#: survivable, and loss/duplication need the reliable transport to not
#: silently corrupt the run.  Degradation and stalls merely delay
#: traffic and are legal in any mode.
#: ``corruption`` rides along: silent bit flips are only *survivable*
#: when the reliable transport's checksums can turn them into loss.
FT_REQUIRED_FAULT_FIELDS = ("crash_node", "crash_worker", "crash_commit",
                            "drop", "dup", "corruption")


# -- validation helpers ----------------------------------------------------------


def _err(path: str, message: str) -> CampaignError:
    return CampaignError(f"{path}: {message}")


def _check_mapping(value: Any, path: str) -> dict:
    if not isinstance(value, dict):
        raise _err(path, f"expected a mapping, got {type(value).__name__}")
    return value


def _reject_unknown(data: dict, known: tuple, path: str) -> None:
    for key in data:
        if key not in known:
            hint = difflib.get_close_matches(str(key), known, n=1)
            suggestion = f" (did you mean {hint[0]!r}?)" if hint else ""
            raise _err(
                path,
                f"unknown field {key!r}{suggestion}; known fields: "
                f"{', '.join(known)}",
            )


def _get_bool(data: dict, key: str, default: bool, path: str) -> bool:
    value = data.get(key, default)
    if not isinstance(value, bool):
        raise _err(f"{path}.{key}", f"expected true/false, got {value!r}")
    return value


def _get_int(
    data: dict, key: str, default: Optional[int], path: str,
    minimum: Optional[int] = None,
) -> Optional[int]:
    value = data.get(key, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise _err(f"{path}.{key}", f"expected an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise _err(f"{path}.{key}", f"must be >= {minimum}, got {value}")
    return value


def _get_float(
    data: dict, key: str, default: Optional[float], path: str,
    minimum: Optional[float] = None, maximum: Optional[float] = None,
) -> Optional[float]:
    value = data.get(key, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _err(f"{path}.{key}", f"expected a number, got {value!r}")
    value = float(value)
    if minimum is not None and value < minimum:
        raise _err(f"{path}.{key}", f"must be >= {minimum:g}, got {value:g}")
    if maximum is not None and value > maximum:
        raise _err(f"{path}.{key}", f"must be <= {maximum:g}, got {value:g}")
    return value


def _get_str(data: dict, key: str, default: str, path: str,
             choices: Optional[tuple] = None) -> str:
    value = data.get(key, default)
    if not isinstance(value, str):
        raise _err(f"{path}.{key}", f"expected a string, got {value!r}")
    if choices is not None and value not in choices:
        raise _err(f"{path}.{key}",
                   f"must be one of {', '.join(choices)}; got {value!r}")
    return value


# -- fault plan ------------------------------------------------------------------


@dataclass(frozen=True)
class FaultSpec:
    """Declarative fault plan of one scenario (mirrors ``repro chaos``).

    All times are **simulated milliseconds**.  The per-message random
    draws (loss/duplication) are seeded by the scenario's ``seed``.
    """

    #: Node to crash; negative disables the crash.
    crash_node: int = -1
    #: speculative_for worker index to crash (scheme ``specfor`` only;
    #: negative disables).  Resolved at run time to the node hosting
    #: that worker, so the same scenario crashes "worker 1" whatever
    #: the placement policy seats it on.
    crash_worker: int = -1
    #: Crash whatever node hosts the commit unit (overrides crash_node).
    crash_commit: bool = False
    #: Crash time (simulated ms).
    crash_at_ms: float = 5.0
    #: Per-message loss probability.
    drop: float = 0.0
    #: Per-message duplication probability.
    dup: float = 0.0
    #: Per-message silent-corruption probability (one bit flipped in a
    #: value leaf; docs/RESILIENCE.md).  Pair with ``integrity: true``
    #: on the scenario to exercise detection and repair — without it
    #: the corruption commits silently.
    corruption: float = 0.0
    #: Fabric degradation factor (>= 1; 0 disables the window).
    degrade: float = 0.0
    #: Degradation window start (simulated ms).
    degrade_at_ms: float = 0.0
    #: Degradation window length (simulated ms).
    degrade_duration_ms: float = 1000.0
    #: Node whose fabric stalls; negative disables the stall.
    stall_node: int = -1
    #: Stall window start (simulated ms).
    stall_at_ms: float = 0.0
    #: Stall window length (simulated ms).
    stall_duration_ms: float = 0.1

    _KNOWN = (
        "crash_node", "crash_worker", "crash_commit", "crash_at_ms",
        "drop", "dup", "corruption",
        "degrade", "degrade_at_ms", "degrade_duration_ms",
        "stall_node", "stall_at_ms", "stall_duration_ms",
    )

    @classmethod
    def from_dict(cls, data: dict, path: str = "faults") -> "FaultSpec":
        _check_mapping(data, path)
        _reject_unknown(data, cls._KNOWN, path)
        spec = cls(
            crash_node=_get_int(data, "crash_node", -1, path),
            crash_worker=_get_int(data, "crash_worker", -1, path),
            crash_commit=_get_bool(data, "crash_commit", False, path),
            crash_at_ms=_get_float(data, "crash_at_ms", 5.0, path, minimum=0.0),
            drop=_get_float(data, "drop", 0.0, path, minimum=0.0, maximum=1.0),
            dup=_get_float(data, "dup", 0.0, path, minimum=0.0, maximum=1.0),
            corruption=_get_float(
                data, "corruption", 0.0, path, minimum=0.0, maximum=1.0),
            degrade=_get_float(data, "degrade", 0.0, path, minimum=0.0),
            degrade_at_ms=_get_float(data, "degrade_at_ms", 0.0, path, minimum=0.0),
            degrade_duration_ms=_get_float(
                data, "degrade_duration_ms", 1000.0, path),
            stall_node=_get_int(data, "stall_node", -1, path),
            stall_at_ms=_get_float(data, "stall_at_ms", 0.0, path, minimum=0.0),
            stall_duration_ms=_get_float(data, "stall_duration_ms", 0.1, path),
        )
        if spec.corruption >= 1.0:
            raise _err(f"{path}.corruption",
                       "probability 1.0 corrupts every message, which is "
                       "a partition, not a fault model; did you mean "
                       "0.999?")
        if 0.0 < spec.degrade < 1.0:
            raise _err(f"{path}.degrade",
                       f"a degradation factor is >= 1 (got {spec.degrade:g}); "
                       f"use 0 to disable the window")
        if spec.degrade and spec.degrade_duration_ms <= 0:
            raise _err(f"{path}.degrade_duration_ms",
                       f"must be positive, got {spec.degrade_duration_ms:g}")
        if spec.stall_node >= 0 and spec.stall_duration_ms <= 0:
            raise _err(f"{path}.stall_duration_ms",
                       f"must be positive, got {spec.stall_duration_ms:g}")
        if spec.crash_worker >= 0 and (spec.crash_node >= 0
                                       or spec.crash_commit):
            raise _err(f"{path}.crash_worker",
                       "a scenario schedules at most one crash; "
                       "crash_worker conflicts with crash_node/crash_commit")
        return spec

    def to_dict(self) -> dict:
        # ``crash_worker`` appears only when set, so fault specs that
        # predate the knob keep their scenario digests (the same
        # absent-features-leave-no-trace rule as ``density``).
        data = {
            "crash_node": self.crash_node,
            "crash_commit": self.crash_commit,
            "crash_at_ms": self.crash_at_ms,
            "drop": self.drop,
            "dup": self.dup,
            "degrade": self.degrade,
            "degrade_at_ms": self.degrade_at_ms,
            "degrade_duration_ms": self.degrade_duration_ms,
            "stall_node": self.stall_node,
            "stall_at_ms": self.stall_at_ms,
            "stall_duration_ms": self.stall_duration_ms,
        }
        if self.crash_worker >= 0:
            data["crash_worker"] = self.crash_worker
        if self.corruption > 0.0:
            data["corruption"] = self.corruption
        return data

    @property
    def ft_required_fields(self) -> tuple:
        """Fault fields set on this spec that need ``fault_tolerance``."""
        active = []
        if self.crash_node >= 0:
            active.append("crash_node")
        if self.crash_worker >= 0:
            active.append("crash_worker")
        if self.crash_commit:
            active.append("crash_commit")
        if self.drop > 0.0:
            active.append("drop")
        if self.dup > 0.0:
            active.append("dup")
        if self.corruption > 0.0:
            active.append("corruption")
        return tuple(active)

    @property
    def is_inert(self) -> bool:
        """True if this spec schedules no fault at all."""
        return (not self.ft_required_fields and self.degrade == 0.0
                and self.stall_node < 0)

    def build_plan(self, seed: int, commit_node: Optional[int] = None,
                   worker_nodes: Optional[tuple] = None):
        """The :class:`repro.chaos.FaultPlan` this spec describes.

        ``commit_node`` resolves ``crash_commit`` and ``worker_nodes``
        (worker index -> hosting node) resolves ``crash_worker`` (the
        runner passes both off the built system).  Returns ``None``
        for an inert spec so fault-free scenarios skip the chaos engine
        entirely (their digests are unchanged by its existence).
        """
        if self.is_inert:
            return None
        from repro.chaos import (
            FaultPlan,
            LinkDegrade,
            MessageCorruption,
            MessageDuplication,
            MessageLoss,
            NodeCrash,
            NodeStall,
        )

        faults = []
        crash_node = self.crash_node
        if self.crash_commit:
            if commit_node is None:
                raise CampaignError(
                    "crash_commit needs the built system's commit node")
            crash_node = commit_node
        if self.crash_worker >= 0:
            if worker_nodes is None:
                raise CampaignError(
                    "crash_worker needs the built system's worker placement")
            if self.crash_worker >= len(worker_nodes):
                raise CampaignError(
                    f"crash_worker {self.crash_worker} is out of range; "
                    f"the scenario runs {len(worker_nodes)} workers")
            crash_node = worker_nodes[self.crash_worker]
        if crash_node >= 0:
            faults.append(NodeCrash(node=crash_node, at_s=self.crash_at_ms * 1e-3))
        if self.degrade:
            faults.append(LinkDegrade(
                at_s=self.degrade_at_ms * 1e-3,
                duration_s=self.degrade_duration_ms * 1e-3,
                latency_factor=self.degrade,
                bandwidth_factor=self.degrade,
            ))
        if self.stall_node >= 0:
            faults.append(NodeStall(
                node=self.stall_node,
                at_s=self.stall_at_ms * 1e-3,
                duration_s=self.stall_duration_ms * 1e-3,
            ))
        if self.drop:
            faults.append(MessageLoss(probability=self.drop))
        if self.dup:
            faults.append(MessageDuplication(probability=self.dup))
        if self.corruption:
            faults.append(MessageCorruption(probability=self.corruption))
        return FaultPlan(faults=tuple(faults), seed=seed)


# -- expectations ----------------------------------------------------------------


@dataclass(frozen=True)
class ExpectationSpec:
    """Assertions checked against each scenario's outcome.

    A missed expectation marks the scenario ``failed`` in its result
    record (and fails ``repro campaign run``'s exit status); it never
    aborts the rest of the sweep.
    """

    #: Exact committed-MTX count (usually the iteration count).
    committed_mtxs: Optional[int] = None
    #: Upper bound on misspeculation recoveries.
    max_misspeculations: Optional[int] = None
    #: Lower bound on speedup vs the sequential baseline.
    min_speedup: Optional[float] = None
    #: Run a fault-free reference and require identical committed
    #: memory and MTX counts (the ``repro chaos`` recovery check;
    #: doubles the scenario's cost).
    matches_reference: bool = False

    _KNOWN = ("committed_mtxs", "max_misspeculations", "min_speedup",
              "matches_reference")

    @classmethod
    def from_dict(cls, data: dict, path: str = "expect") -> "ExpectationSpec":
        _check_mapping(data, path)
        _reject_unknown(data, cls._KNOWN, path)
        return cls(
            committed_mtxs=_get_int(data, "committed_mtxs", None, path, minimum=0),
            max_misspeculations=_get_int(
                data, "max_misspeculations", None, path, minimum=0),
            min_speedup=_get_float(data, "min_speedup", None, path, minimum=0.0),
            matches_reference=_get_bool(data, "matches_reference", False, path),
        )

    def to_dict(self) -> dict:
        return {
            "committed_mtxs": self.committed_mtxs,
            "max_misspeculations": self.max_misspeculations,
            "min_speedup": self.min_speedup,
            "matches_reference": self.matches_reference,
        }


# -- scenarios -------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-resolved scenario: everything one run needs."""

    #: Unique name inside the campaign (axis suffixes are appended by
    #: expansion, e.g. ``crc32/cores=16/seed=3``).
    name: str
    #: Benchmark from the Table 2 registry (``repro list``).
    benchmark: str
    #: Parallelization scheme: ``dsmtx`` or ``tls``.
    scheme: str = "dsmtx"
    #: Total cores (workers + try-commit + commit + extras).
    cores: int = 8
    #: Iteration-count override; ``null`` keeps the workload default.
    iterations: Optional[int] = None
    #: Seed of the fault plan's per-message random draws.
    seed: int = 0
    #: Queue batch-size override in bytes; ``null`` = cluster default.
    batch_bytes: Optional[int] = None
    #: Unit-to-node placement policy.
    placement: str = "pack"
    #: COA read replicas (each takes one core off the worker budget).
    coa_replicas: int = 0
    #: Enable the failure-aware runtime (docs/RESILIENCE.md).
    fault_tolerance: bool = False
    #: Run a hot-standby commit replica (requires fault_tolerance).
    commit_replication: bool = False
    #: Checksum every frame, digest checkpoints/replication, and scrub
    #: committed memory (requires fault_tolerance; docs/RESILIENCE.md).
    integrity: bool = False
    #: Iterations whose speculative execution must abort.
    misspec_iterations: tuple = ()
    #: Misspeculate every Nth iteration (0 disables) — the
    #: conflict-density knob for sweep axes.
    misspec_every: int = 0
    #: Structural conflict density in [0, 1] for the irregular workloads
    #: (vertex-pool size, neighbor degree, contraction order); ``null``
    #: keeps the workload default.  Rejected for Table 2 benchmarks.
    density: Optional[float] = None
    #: Deterministic fault plan (simulated-ms schedule).
    faults: FaultSpec = field(default_factory=FaultSpec)
    #: Outcome assertions.
    expect: ExpectationSpec = field(default_factory=ExpectationSpec)
    #: Capture a Perfetto trace of this scenario (written only when the
    #: runner is given a trace directory; docs/OBSERVABILITY.md).
    trace: bool = False

    _KNOWN = (
        "name", "benchmark", "scheme", "cores", "iterations", "seed",
        "batch_bytes", "placement", "coa_replicas", "fault_tolerance",
        "commit_replication", "integrity", "misspec_iterations",
        "misspec_every", "density", "faults", "expect", "trace",
    )

    @classmethod
    def from_dict(cls, data: dict, path: str = "scenario") -> "ScenarioSpec":
        """Validate and build one scenario; every error names ``path``.

        Fault fields that need the failure-aware runtime
        (:data:`FT_REQUIRED_FAULT_FIELDS`) are **ignored** when
        ``fault_tolerance`` is false: the scenario is built without
        them and a :class:`CampaignValidationWarning` names each
        ignored field.
        """
        _check_mapping(data, path)
        _reject_unknown(data, cls._KNOWN, path)
        benchmark = _get_str(data, "benchmark", "", path)
        if not benchmark:
            raise _err(f"{path}.benchmark", "a scenario needs a benchmark")
        from repro.workloads import ALL_BENCHMARKS, IRREGULAR

        if benchmark not in ALL_BENCHMARKS:
            hint = difflib.get_close_matches(benchmark, ALL_BENCHMARKS, n=1)
            suggestion = f" (did you mean {hint[0]!r}?)" if hint else ""
            raise _err(f"{path}.benchmark",
                       f"unknown benchmark {benchmark!r}{suggestion}; "
                       f"run 'repro list' to see the registry")
        density = _get_float(data, "density", None, path,
                             minimum=0.0, maximum=1.0)
        if density is not None and benchmark not in IRREGULAR:
            raise _err(f"{path}.density",
                       f"benchmark {benchmark!r} takes no density knob; "
                       f"only the irregular workloads do: "
                       f"{', '.join(sorted(IRREGULAR))}")
        misspec_raw = data.get("misspec_iterations", ())
        if not isinstance(misspec_raw, (list, tuple)) or not all(
            isinstance(i, int) and not isinstance(i, bool) and i >= 0
            for i in misspec_raw
        ):
            raise _err(f"{path}.misspec_iterations",
                       f"expected a list of non-negative integers, "
                       f"got {misspec_raw!r}")
        faults = FaultSpec.from_dict(data.get("faults", {}), f"{path}.faults")
        fault_tolerance = _get_bool(data, "fault_tolerance", False, path)
        if not fault_tolerance:
            ignored = faults.ft_required_fields
            if ignored:
                warnings.warn(
                    f"{path}: fault field(s) {', '.join(ignored)} are ignored "
                    f"because fault_tolerance is false — crashes and message "
                    f"loss/duplication need the failure-aware runtime; set "
                    f"fault_tolerance: true to apply them",
                    CampaignValidationWarning,
                    stacklevel=2,
                )
                faults = replace(
                    faults, crash_node=-1, crash_worker=-1,
                    crash_commit=False, drop=0.0, dup=0.0, corruption=0.0)
        spec = cls(
            name=_get_str(data, "name", benchmark, path),
            benchmark=benchmark,
            scheme=_get_str(data, "scheme", "dsmtx", path, choices=SCHEMES),
            cores=_get_int(data, "cores", 8, path, minimum=3),
            iterations=_get_int(data, "iterations", None, path, minimum=1),
            seed=_get_int(data, "seed", 0, path, minimum=0),
            batch_bytes=_get_int(data, "batch_bytes", None, path, minimum=8),
            placement=_get_str(data, "placement", "pack", path,
                               choices=PLACEMENTS),
            coa_replicas=_get_int(data, "coa_replicas", 0, path, minimum=0),
            fault_tolerance=fault_tolerance,
            commit_replication=_get_bool(data, "commit_replication", False, path),
            integrity=_get_bool(data, "integrity", False, path),
            misspec_iterations=tuple(sorted(set(misspec_raw))),
            misspec_every=_get_int(data, "misspec_every", 0, path, minimum=0),
            density=density,
            faults=faults,
            expect=ExpectationSpec.from_dict(
                data.get("expect", {}), f"{path}.expect"),
            trace=_get_bool(data, "trace", False, path),
        )
        if spec.commit_replication and not spec.fault_tolerance:
            raise _err(f"{path}.commit_replication",
                       "a commit standby needs the failure-aware runtime; "
                       "set fault_tolerance: true")
        if spec.integrity and not spec.fault_tolerance:
            raise _err(f"{path}.integrity",
                       "checksums repair corruption by converting it into "
                       "loss, which only the reliable transport can "
                       "retransmit; set fault_tolerance: true")
        if spec.scheme == "specfor":
            if spec.coa_replicas:
                raise _err(f"{path}.coa_replicas",
                           "COA read replicas belong to the DSMTX runtime; "
                           "scheme 'specfor' ships snapshots to every "
                           "worker instead")
            if spec.faults.crash_worker >= 0:
                # Worker count mirrors the runner's split: one core for
                # the reservation service, one more for the standby.
                workers = spec.cores - 1 - (1 if spec.commit_replication else 0)
                if spec.faults.crash_worker >= workers:
                    raise _err(
                        f"{path}.faults.crash_worker",
                        f"worker {spec.faults.crash_worker} does not exist: "
                        f"{spec.cores} cores run {workers} workers under "
                        f"scheme 'specfor'"
                        + (" with a replicated standby"
                           if spec.commit_replication else ""),
                    )
        elif spec.faults.crash_worker >= 0:
            raise _err(f"{path}.faults.crash_worker",
                       f"crash_worker names a speculative_for worker and "
                       f"only applies under scheme 'specfor'; under scheme "
                       f"{spec.scheme!r} did you mean 'crash_node' (a "
                       f"cluster node) or 'crash_commit' (whichever node "
                       f"hosts the commit unit)?")
        spec._check_core_budget(path)
        return spec

    def _check_core_budget(self, path: str) -> None:
        """Reject a core count the chosen plan cannot run on, at load
        time — a campaign should fail before it fans out, not 80
        scenarios in."""
        try:
            pipeline_min = self.plan_min_cores()
        except CampaignError as exc:
            raise _err(f"{path}.scheme", str(exc)) from None
        reserved_extra = self.coa_replicas + (1 if self.commit_replication else 0)
        minimum = pipeline_min + reserved_extra
        if self.cores < minimum:
            raise _err(
                f"{path}.cores",
                f"benchmark {self.benchmark!r} under scheme {self.scheme!r} "
                f"needs at least {minimum} cores "
                f"({pipeline_min} for the pipeline + {reserved_extra} "
                f"reserved), got {self.cores}",
            )

    def plan_min_cores(self) -> int:
        """Minimum cores of this scenario's pipeline (cheap: reads the
        plan shape off a single-iteration workload instance).

        For scheme ``specfor`` this doubles as the reservation-site
        check: a workload without one is rejected here, at load time,
        with the paradigm's did-you-mean error.
        """
        from repro.workloads import ALL_BENCHMARKS

        workload = ALL_BENCHMARKS[self.benchmark](iterations=1)
        if self.scheme == "specfor":
            from repro.errors import ParadigmError
            from repro.paradigms import ensure_reservation_site

            try:
                ensure_reservation_site(workload)
            except ParadigmError as exc:
                raise CampaignError(str(exc)) from None
            # One worker plus the reservation-commit service; the
            # SystemConfig floor of 3 cores still applies above.
            return 2
        plan = (workload.dsmtx_plan() if self.scheme == "dsmtx"
                else workload.tls_plan())
        return plan.min_cores

    def resolved_misspec_iterations(self, iterations: int) -> Optional[set]:
        """Explicit misspeculating iterations plus the ``misspec_every``
        comb, clipped to the actual iteration count."""
        bad = {i for i in self.misspec_iterations if i < iterations}
        if self.misspec_every:
            bad.update(range(self.misspec_every - 1, iterations,
                             self.misspec_every))
        return bad or None

    def to_dict(self) -> dict:
        """Canonical form: every field explicit, insertion order fixed.

        ``from_dict(to_dict(spec)) == spec`` — the round-trip identity
        the schema tests pin.  Exception: ``density`` and ``integrity``
        appear only when set, so scenarios that predate those knobs
        keep their digests (absent features leave no trace).
        """
        data = {
            "name": self.name,
            "benchmark": self.benchmark,
            "scheme": self.scheme,
            "cores": self.cores,
            "iterations": self.iterations,
            "seed": self.seed,
            "batch_bytes": self.batch_bytes,
            "placement": self.placement,
            "coa_replicas": self.coa_replicas,
            "fault_tolerance": self.fault_tolerance,
            "commit_replication": self.commit_replication,
            "misspec_iterations": list(self.misspec_iterations),
            "misspec_every": self.misspec_every,
            "faults": self.faults.to_dict(),
            "expect": self.expect.to_dict(),
            "trace": self.trace,
        }
        if self.density is not None:
            data["density"] = self.density
        if self.integrity:
            data["integrity"] = True
        return data

    def digest(self) -> str:
        """sha256 identity of this scenario (see :func:`scenario_digest`)."""
        return scenario_digest(self)


def scenario_digest(spec: ScenarioSpec) -> str:
    """sha256 over the canonical JSON dump of a resolved scenario.

    The digest is the scenario's identity in the results store: it
    changes when (and only when) any field that can affect the run
    changes, so re-running an identical campaign hits identical keys.
    """
    canon = json.dumps(spec.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()


# -- campaigns -------------------------------------------------------------------


def _merge(base: dict, overlay: dict) -> dict:
    """Dict merge, one level deep for the nested ``faults``/``expect``
    mappings (an overlay's nested fields override individually)."""
    merged = dict(base)
    for key, value in overlay.items():
        if (isinstance(value, dict) and isinstance(merged.get(key), dict)):
            merged[key] = {**merged[key], **value}
        else:
            merged[key] = value
    return merged


def _set_dotted(data: dict, dotted: str, value: Any, path: str) -> None:
    """Assign ``faults.drop``-style axis keys into a scenario dict."""
    parts = dotted.split(".")
    if len(parts) > 2:
        raise _err(path, f"axis key {dotted!r} nests too deep "
                         f"(at most one dot, e.g. 'faults.drop')")
    if len(parts) == 1:
        data[dotted] = value
        return
    head, tail = parts
    if head not in ("faults", "expect"):
        raise _err(path, f"axis key {dotted!r}: only 'faults.*' and "
                         f"'expect.*' may be dotted")
    nested = data.setdefault(head, {})
    if not isinstance(nested, dict):
        raise _err(path, f"axis key {dotted!r} conflicts with a "
                         f"non-mapping {head!r} value")
    nested[tail] = value


def _axis_value_label(value: Any) -> str:
    if isinstance(value, bool):
        return "on" if value else "off"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


@dataclass(frozen=True)
class CampaignSpec:
    """A parsed campaign document: bases x axes, plus shared defaults."""

    name: str
    description: str = ""
    #: Field values merged under every scenario.
    defaults: dict = field(default_factory=dict)
    #: Sweep axes: field path -> list of values (dotted for
    #: ``faults.*`` / ``expect.*``).  The grid is the cartesian
    #: product, applied to every base scenario.
    axes: dict = field(default_factory=dict)
    #: Base scenario dicts (pre-merge, as authored).
    scenarios: tuple = ()
    #: Where the campaign was loaded from (diagnostics only).
    source: str = ""

    _KNOWN = ("name", "description", "defaults", "axes", "scenarios")

    @classmethod
    def from_dict(cls, data: dict, source: str = "") -> "CampaignSpec":
        _check_mapping(data, "campaign")
        _reject_unknown(data, cls._KNOWN, "campaign")
        name = _get_str(data, "name", "", "campaign")
        if not name:
            raise _err("campaign.name", "a campaign needs a name")
        defaults = _check_mapping(data.get("defaults", {}), "campaign.defaults")
        axes = _check_mapping(data.get("axes", {}), "campaign.axes")
        for key, values in axes.items():
            if not isinstance(values, list) or not values:
                raise _err(f"campaign.axes.{key}",
                           f"an axis is a non-empty list of values, "
                           f"got {values!r}")
        raw_scenarios = data.get("scenarios", [{}])
        if not isinstance(raw_scenarios, list) or not raw_scenarios:
            raise _err("campaign.scenarios",
                       f"expected a non-empty list, got {raw_scenarios!r}")
        for index, entry in enumerate(raw_scenarios):
            _check_mapping(entry, f"campaign.scenarios[{index}]")
        spec = cls(
            name=name,
            description=_get_str(data, "description", "", "campaign"),
            defaults=dict(defaults),
            axes={str(k): list(v) for k, v in axes.items()},
            scenarios=tuple(dict(entry) for entry in raw_scenarios),
            source=source,
        )
        spec.expand()  # validate the whole grid at load time
        return spec

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "defaults": dict(self.defaults),
            "axes": {k: list(v) for k, v in self.axes.items()},
            "scenarios": [dict(entry) for entry in self.scenarios],
        }

    def expand(self) -> list:
        """The concrete scenario list: bases x cartesian axis product.

        Axis assignments append ``/key=value`` suffixes to each base's
        name, so every expanded scenario is addressable; duplicate
        names are a campaign error.
        """
        axis_items = list(self.axes.items())
        combos = list(itertools.product(*(values for _k, values in axis_items)))
        specs: list[ScenarioSpec] = []
        seen: dict[str, str] = {}
        for base_index, base in enumerate(self.scenarios):
            base_path = f"campaign.scenarios[{base_index}]"
            for combo in combos:
                merged = _merge(self.defaults, base)
                suffix = []
                for (key, _values), value in zip(axis_items, combo):
                    _set_dotted(merged, key, value, f"campaign.axes.{key}")
                    suffix.append(
                        f"{key.split('.')[-1]}={_axis_value_label(value)}")
                if suffix and "name" not in merged:
                    # Derive a base label so axis products of an unnamed
                    # scenario do not all collide on the benchmark name.
                    merged["name"] = str(merged.get("benchmark", "scenario"))
                if suffix:
                    merged["name"] = "/".join([merged["name"], *suffix])
                spec = ScenarioSpec.from_dict(merged, base_path)
                if spec.name in seen:
                    raise _err(
                        base_path,
                        f"duplicate scenario name {spec.name!r} (first "
                        f"defined at {seen[spec.name]}); scenario names "
                        f"must be unique after axis expansion",
                    )
                seen[spec.name] = base_path
                specs.append(spec)
        return specs


# -- loading ---------------------------------------------------------------------


def loads_campaign(text: str, *, fmt: str = "json",
                   source: str = "<string>") -> CampaignSpec:
    """Parse a campaign document from a string (``fmt``: json|yaml)."""
    if fmt == "yaml":
        try:
            import yaml
        except ImportError:
            raise CampaignError(
                f"{source}: YAML campaigns need the optional 'pyyaml' "
                f"dependency; install it or convert the file to JSON"
            ) from None
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise CampaignError(f"{source}: invalid YAML: {exc}") from None
    else:
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise CampaignError(f"{source}: invalid JSON: {exc}") from None
    return CampaignSpec.from_dict(data, source=source)


def load_campaign(path: Union[str, Path]) -> CampaignSpec:
    """Load and validate a campaign file (.json, .yaml, or .yml)."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise CampaignError(f"cannot read campaign file {path}: {exc}") from None
    fmt = "yaml" if path.suffix.lower() in (".yaml", ".yml") else "json"
    return loads_campaign(text, fmt=fmt, source=str(path))
