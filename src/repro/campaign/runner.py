"""Campaign sweep runner: fan scenarios across host cores.

``repro campaign run`` hands the expanded scenario list to
:func:`run_campaign`, which executes each scenario with
:func:`run_scenario` — either inline (``workers=1``) or across a
``multiprocessing`` pool.  Every scenario is an independent,
deterministic simulation (fresh :class:`~repro.sim.Environment`,
seeded fault plan, virtual clock), so the fan-out is embarrassingly
parallel and the *result records are byte-identical whatever the
worker count* — the determinism suite pins exactly that.

A scenario's outcome is reduced to a :class:`ScenarioResult`: the
scenario digest (spec identity), the outcome digest (the
``repro chaos`` run digest: committed memory word-for-word, failure
records, transport counters), headline statistics, and the verdict of
the scenario's expectations.  ``record()`` is the canonical,
deterministic dict the store persists; host wall-clock time rides
alongside but is excluded from it.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.campaign.schema import CampaignSpec, ScenarioSpec

__all__ = ["ScenarioResult", "run_scenario", "run_campaign", "RECORD_SCHEMA"]

#: Schema version of the result record.
RECORD_SCHEMA = 1


@dataclass
class ScenarioResult:
    """Outcome of one scenario run."""

    name: str
    index: int
    scenario_digest: str
    outcome_digest: str
    #: ``ok`` | ``failed`` (expectation missed) | ``error`` (run raised).
    status: str
    #: Human-readable reasons when status is not ``ok``.
    failures: list = field(default_factory=list)
    benchmark: str = ""
    scheme: str = "dsmtx"
    cores: int = 0
    seed: int = 0
    committed_mtxs: int = 0
    misspeculations: int = 0
    words_committed: int = 0
    queue_bytes: int = 0
    queue_batches: int = 0
    coa_pages_served: int = 0
    #: Simulated duration of the parallel region.
    elapsed_sim_seconds: float = 0.0
    #: Single-core sequential execution time (speedup base).
    sequential_seconds: float = 0.0
    speedup: float = 0.0
    #: Node-failure recovery episodes: detection-to-resume latency each.
    recovery_seconds: list = field(default_factory=list)
    #: Speculative iterations lost across all node failures.
    lost_iterations: int = 0
    #: Standby promotions (commit-unit failovers).
    promotions: int = 0
    #: Epoch checkpoints taken.
    checkpoints: int = 0
    #: Conflict-density knob of the scenario (irregular workloads only).
    density: Optional[float] = None
    #: Reservation rounds, ``write_min`` losses, and carried iterations
    #: (scheme ``specfor`` only; all zero elsewhere).
    specfor_rounds: int = 0
    specfor_reservation_failures: int = 0
    specfor_carried: int = 0
    #: Host wall-clock seconds this scenario took.  NOT part of the
    #: canonical record — it varies run to run by construction.
    wall_seconds: float = 0.0

    def record(self) -> dict:
        """The canonical, deterministic result record (no wall clock)."""
        return {
            "schema": RECORD_SCHEMA,
            "name": self.name,
            "index": self.index,
            "scenario_digest": self.scenario_digest,
            "outcome_digest": self.outcome_digest,
            "status": self.status,
            "failures": list(self.failures),
            "benchmark": self.benchmark,
            "scheme": self.scheme,
            "cores": self.cores,
            "seed": self.seed,
            "committed_mtxs": self.committed_mtxs,
            "misspeculations": self.misspeculations,
            "words_committed": self.words_committed,
            "queue_bytes": self.queue_bytes,
            "queue_batches": self.queue_batches,
            "coa_pages_served": self.coa_pages_served,
            "elapsed_sim_seconds": self.elapsed_sim_seconds,
            "sequential_seconds": self.sequential_seconds,
            "speedup": self.speedup,
            "recovery_seconds": list(self.recovery_seconds),
            "lost_iterations": self.lost_iterations,
            "promotions": self.promotions,
            "checkpoints": self.checkpoints,
            "density": self.density,
            "specfor_rounds": self.specfor_rounds,
            "specfor_reservation_failures": self.specfor_reservation_failures,
            "specfor_carried": self.specfor_carried,
        }

    def record_json(self) -> str:
        """Canonical JSON of :meth:`record` (byte-comparable)."""
        return json.dumps(self.record(), sort_keys=True, separators=(",", ":"))

    @property
    def ok(self) -> bool:
        return self.status == "ok"


# -- one scenario ----------------------------------------------------------------


def _workload_kwargs(spec: ScenarioSpec) -> dict:
    kwargs = {}
    if spec.iterations is not None:
        kwargs["iterations"] = spec.iterations
    if spec.density is not None:
        kwargs["density"] = spec.density
    return kwargs


def _build_system(spec: ScenarioSpec, config):
    """A fresh (system, workload) pair for ``spec`` under ``config``."""
    from repro.core import DSMTXSystem
    from repro.workloads import ALL_BENCHMARKS

    factory = ALL_BENCHMARKS[spec.benchmark]
    kwargs = _workload_kwargs(spec)
    workload = factory(**kwargs)
    bad = spec.resolved_misspec_iterations(workload.iterations)
    if bad is not None:
        workload = factory(misspec_iterations=bad, **kwargs)
    if spec.scheme == "specfor":
        from repro.paradigms import SpecForSystem

        # Every core beyond the reservation-commit service (and the
        # optional hot standby) is a worker.
        workers = spec.cores - 1 - (1 if spec.commit_replication else 0)
        return SpecForSystem(workload, config, workers=workers), workload
    plan = (workload.dsmtx_plan() if spec.scheme == "dsmtx"
            else workload.tls_plan())
    return DSMTXSystem(plan, config), workload


def _system_config(spec: ScenarioSpec):
    from repro.core import SystemConfig

    kwargs = dict(
        total_cores=spec.cores,
        placement=spec.placement,
        coa_replicas=spec.coa_replicas,
        fault_tolerance=spec.fault_tolerance,
        commit_replication=spec.commit_replication,
        integrity=spec.integrity,
    )
    if spec.batch_bytes is not None:
        kwargs["batch_bytes"] = spec.batch_bytes
    return SystemConfig(**kwargs)


def _trace_path(trace_dir: Path, spec: ScenarioSpec) -> Path:
    safe = spec.name.replace("/", "_").replace(" ", "_")
    return trace_dir / f"{safe}.trace.json"


def run_scenario(
    spec: ScenarioSpec,
    index: int = 0,
    trace_dir: Optional[Path] = None,
) -> ScenarioResult:
    """Execute one scenario and reduce it to a :class:`ScenarioResult`.

    Never raises for a failing *run*: simulation errors (an
    unsurvivable fault plan, a deadlock) are folded into an ``error``
    record so one bad scenario cannot sink a 500-scenario sweep.
    """
    began = time.perf_counter()
    result = ScenarioResult(
        name=spec.name,
        index=index,
        scenario_digest=spec.digest(),
        outcome_digest="",
        status="ok",
        benchmark=spec.benchmark,
        scheme=spec.scheme,
        cores=spec.cores,
        seed=spec.seed,
        density=spec.density,
    )
    try:
        _execute(spec, result, trace_dir)
    except Exception as exc:  # noqa: BLE001 - fold any run failure into the record
        result.status = "error"
        result.failures.append(f"{type(exc).__name__}: {exc}")
    result.wall_seconds = time.perf_counter() - began
    return result


def _execute(spec: ScenarioSpec, result: ScenarioResult,
             trace_dir: Optional[Path]) -> None:
    from repro.analysis import run_digest

    config = _system_config(spec)
    system, workload = _build_system(spec, config)

    engine = None
    worker_nodes = None
    if spec.scheme == "specfor":
        worker_nodes = tuple(
            system.cluster.node_of_core(system._core_indices[tid])
            for tid in range(system.num_workers))
    fault_plan = spec.faults.build_plan(
        spec.seed,
        commit_node=system.cluster.node_of_core(
            system._core_indices[system.commit_tid]),
        worker_nodes=worker_nodes,
    )
    if fault_plan is not None:
        from repro.chaos import ChaosEngine

        engine = ChaosEngine(fault_plan).attach(system.env)

    hub = None
    if spec.trace and trace_dir is not None:
        from repro.obs import instrument

        hub = instrument(system)

    run = system.run()
    stats = run.stats
    if hub is not None:
        from repro.obs import write_chrome_trace

        hub.finalize(system)
        trace_dir.mkdir(parents=True, exist_ok=True)
        write_chrome_trace(
            hub.tracer, _trace_path(trace_dir, spec),
            metadata={"scenario": spec.name,
                      "scenario_digest": result.scenario_digest},
        )

    result.outcome_digest = run_digest(
        stats, master=system.commit.master, chaos=engine)
    result.committed_mtxs = stats.committed_mtxs
    result.misspeculations = stats.misspeculations
    result.words_committed = stats.words_committed
    result.queue_bytes = stats.queue_bytes
    result.queue_batches = stats.queue_batches
    result.coa_pages_served = stats.coa_pages_served
    result.elapsed_sim_seconds = stats.elapsed_seconds
    result.recovery_seconds = [f.recovery_seconds for f in stats.failures]
    result.lost_iterations = stats.lost_iterations
    result.promotions = stats.ft_promotions
    result.checkpoints = len(stats.checkpoints)
    result.specfor_rounds = stats.specfor_rounds
    result.specfor_reservation_failures = stats.specfor_reservation_failures
    result.specfor_carried = stats.specfor_carried

    from repro.workloads import ALL_BENCHMARKS

    sequential = ALL_BENCHMARKS[spec.benchmark](**_workload_kwargs(spec))
    result.sequential_seconds = sequential.sequential_seconds(config)
    if stats.elapsed_seconds > 0:
        result.speedup = result.sequential_seconds / stats.elapsed_seconds

    _check_expectations(spec, result, system, config)
    if result.failures:
        result.status = "failed"


def _check_expectations(spec: ScenarioSpec, result: ScenarioResult,
                        system, config) -> None:
    expect = spec.expect
    if (expect.committed_mtxs is not None
            and result.committed_mtxs != expect.committed_mtxs):
        result.failures.append(
            f"committed_mtxs: expected {expect.committed_mtxs}, "
            f"got {result.committed_mtxs}")
    if (expect.max_misspeculations is not None
            and result.misspeculations > expect.max_misspeculations):
        result.failures.append(
            f"misspeculations: expected <= {expect.max_misspeculations}, "
            f"got {result.misspeculations}")
    if (expect.min_speedup is not None
            and result.speedup < expect.min_speedup):
        result.failures.append(
            f"speedup: expected >= {expect.min_speedup:g}, "
            f"got {result.speedup:.3g}")
    if expect.matches_reference:
        from repro.analysis import memory_fingerprint

        # The fault-free reference must be layout-identical: a commit
        # standby reserves a unit slot, so replication stays on; plain
        # fault tolerance adds no units and is dropped for speed.
        # Integrity adds no units either, and SystemConfig rejects it
        # without fault_tolerance, so it follows the same switch.
        ref_config = replace(
            config,
            fault_tolerance=spec.commit_replication,
            commit_replication=spec.commit_replication,
            integrity=spec.integrity and spec.commit_replication,
        )
        ref_system, _ = _build_system(spec, ref_config)
        ref_stats = ref_system.run().stats
        if result.committed_mtxs != ref_stats.committed_mtxs:
            result.failures.append(
                f"reference: committed {result.committed_mtxs} MTXs, "
                f"fault-free run committed {ref_stats.committed_mtxs}")
        elif (memory_fingerprint(system.commit.master)
                != memory_fingerprint(ref_system.commit.master)):
            result.failures.append(
                "reference: committed memory differs from the fault-free run")


# -- the sweep -------------------------------------------------------------------


def _child(payload: tuple) -> ScenarioResult:
    spec_dict, index, trace_dir = payload
    spec = ScenarioSpec.from_dict(spec_dict)
    return run_scenario(
        spec, index, Path(trace_dir) if trace_dir else None)


def run_campaign(
    scenarios: Sequence[ScenarioSpec],
    workers: int = 1,
    trace_dir: Optional[Path] = None,
    progress: Optional[Callable[[int, int, ScenarioResult], None]] = None,
) -> list[ScenarioResult]:
    """Run every scenario; results in scenario order.

    ``workers > 1`` fans the list across a ``multiprocessing`` pool
    (one scenario per task, so stragglers rebalance); ``progress`` is
    called after each completion with ``(done, total, result)``.
    Records are byte-identical across worker counts.
    """
    total = len(scenarios)
    results: list[ScenarioResult] = []
    if workers <= 1 or total <= 1:
        for index, spec in enumerate(scenarios):
            result = run_scenario(spec, index, trace_dir)
            results.append(result)
            if progress is not None:
                progress(len(results), total, result)
        return results

    payloads = [
        (spec.to_dict(), index, str(trace_dir) if trace_dir else None)
        for index, spec in enumerate(scenarios)
    ]
    with multiprocessing.Pool(processes=min(workers, total)) as pool:
        for result in pool.imap(_child, payloads, chunksize=1):
            results.append(result)
            if progress is not None:
                progress(len(results), total, result)
    return results


def expand_campaign(campaign: CampaignSpec) -> list[ScenarioSpec]:
    """Convenience re-export of :meth:`CampaignSpec.expand`."""
    return campaign.expand()
