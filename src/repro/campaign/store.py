"""Persistent campaign results store (SQLite).

Every ``repro campaign run`` appends one *campaign row* plus one
*result row per scenario* to a single SQLite file (default
``campaigns.sqlite``).  Result rows are keyed by the **scenario
digest** — the sha256 identity of the resolved scenario spec — so the
same scenario is comparable across campaigns, files, and code
versions: that is what powers ``repro campaign diff``'s regression
check (same scenario digest, different outcome digest => behavior
changed).

The canonical result record (:meth:`ScenarioResult.record`) is stored
verbatim as JSON; headline columns are denormalized for SQL-side
filtering and the report queries.  Host wall-clock time is stored in
its own column, outside the canonical record.
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.errors import CampaignError

__all__ = ["CampaignStore", "CampaignDiff", "DEFAULT_STORE"]

#: Default store file, in the working directory.
DEFAULT_STORE = "campaigns.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    id          INTEGER PRIMARY KEY AUTOINCREMENT,
    name        TEXT NOT NULL,
    source      TEXT NOT NULL DEFAULT '',
    created_at  TEXT NOT NULL,
    workers     INTEGER NOT NULL DEFAULT 1,
    scenarios   INTEGER NOT NULL DEFAULT 0,
    ok          INTEGER NOT NULL DEFAULT 0,
    spec_json   TEXT NOT NULL DEFAULT '{}'
);
CREATE TABLE IF NOT EXISTS results (
    campaign_id     INTEGER NOT NULL REFERENCES campaigns(id),
    idx             INTEGER NOT NULL,
    name            TEXT NOT NULL,
    scenario_digest TEXT NOT NULL,
    outcome_digest  TEXT NOT NULL,
    status          TEXT NOT NULL,
    benchmark       TEXT NOT NULL DEFAULT '',
    scheme          TEXT NOT NULL DEFAULT '',
    cores           INTEGER NOT NULL DEFAULT 0,
    speedup         REAL NOT NULL DEFAULT 0.0,
    wall_seconds    REAL NOT NULL DEFAULT 0.0,
    record_json     TEXT NOT NULL,
    PRIMARY KEY (campaign_id, idx)
);
CREATE INDEX IF NOT EXISTS results_by_scenario
    ON results (scenario_digest);
"""


@dataclass
class CampaignDiff:
    """Outcome comparison of two stored campaigns, keyed by scenario
    digest."""

    old_id: int
    new_id: int
    #: (name, scenario_digest, old_outcome, new_outcome) whose outcome
    #: digest changed — the regressions (or intended behavior changes).
    changed: list = field(default_factory=list)
    #: (name, scenario_digest) present only in the new campaign.
    added: list = field(default_factory=list)
    #: (name, scenario_digest) present only in the old campaign.
    removed: list = field(default_factory=list)
    #: Scenarios with identical outcome digests.
    unchanged: int = 0

    @property
    def clean(self) -> bool:
        """True when every shared scenario has an identical outcome."""
        return not self.changed


class CampaignStore:
    """One SQLite results store; usable as a context manager."""

    def __init__(self, path: Union[str, Path] = DEFAULT_STORE) -> None:
        self.path = Path(path)
        self._conn = sqlite3.connect(str(self.path))
        self._conn.row_factory = sqlite3.Row
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- writing -------------------------------------------------------------

    def record_campaign(
        self,
        *,
        name: str,
        results: Sequence,
        source: str = "",
        workers: int = 1,
        spec_json: str = "{}",
        created_at: Optional[str] = None,
    ) -> int:
        """Persist one finished sweep; returns the new campaign id."""
        created = created_at or datetime.now(timezone.utc).isoformat(
            timespec="seconds")
        cursor = self._conn.execute(
            "INSERT INTO campaigns (name, source, created_at, workers, "
            "scenarios, ok, spec_json) VALUES (?, ?, ?, ?, ?, ?, ?)",
            (name, source, created, workers, len(results),
             sum(1 for r in results if r.ok), spec_json),
        )
        campaign_id = cursor.lastrowid
        self._conn.executemany(
            "INSERT INTO results (campaign_id, idx, name, scenario_digest, "
            "outcome_digest, status, benchmark, scheme, cores, speedup, "
            "wall_seconds, record_json) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            [
                (campaign_id, r.index, r.name, r.scenario_digest,
                 r.outcome_digest, r.status, r.benchmark, r.scheme, r.cores,
                 r.speedup, r.wall_seconds, r.record_json())
                for r in results
            ],
        )
        self._conn.commit()
        return campaign_id

    # -- reading -------------------------------------------------------------

    def campaigns(self) -> list[dict]:
        """Stored campaigns, oldest first."""
        rows = self._conn.execute(
            "SELECT id, name, source, created_at, workers, scenarios, ok "
            "FROM campaigns ORDER BY id"
        ).fetchall()
        return [dict(row) for row in rows]

    def results(self, campaign_id: int) -> list[dict]:
        """Canonical result records of one campaign, in scenario order
        (each with ``wall_seconds`` re-attached)."""
        rows = self._conn.execute(
            "SELECT record_json, wall_seconds FROM results "
            "WHERE campaign_id = ? ORDER BY idx", (campaign_id,)
        ).fetchall()
        if not rows:
            raise CampaignError(f"no stored campaign with id {campaign_id}")
        records = []
        for row in rows:
            record = json.loads(row["record_json"])
            record["wall_seconds"] = row["wall_seconds"]
            records.append(record)
        return records

    def outcome_digests(self, campaign_id: int) -> list[tuple]:
        """(name, scenario_digest, outcome_digest) in scenario order."""
        rows = self._conn.execute(
            "SELECT name, scenario_digest, outcome_digest FROM results "
            "WHERE campaign_id = ? ORDER BY idx", (campaign_id,)
        ).fetchall()
        if not rows:
            raise CampaignError(f"no stored campaign with id {campaign_id}")
        return [(r["name"], r["scenario_digest"], r["outcome_digest"])
                for r in rows]

    def resolve(self, ref: Union[int, str]) -> int:
        """Campaign id for ``ref``: an id, ``latest``, or ``prev``."""
        ids = [row["id"] for row in self.campaigns()]
        if not ids:
            raise CampaignError(
                f"store {self.path} holds no campaigns yet; run "
                f"'repro campaign run <file>' first")
        if isinstance(ref, str):
            if ref == "latest":
                return ids[-1]
            if ref == "prev":
                if len(ids) < 2:
                    raise CampaignError(
                        f"store {self.path} holds only one campaign; "
                        f"'prev' needs at least two")
                return ids[-2]
            try:
                ref = int(ref)
            except ValueError:
                raise CampaignError(
                    f"campaign reference must be an id, 'latest', or "
                    f"'prev'; got {ref!r}") from None
        if ref not in ids:
            raise CampaignError(
                f"no stored campaign with id {ref}; known ids: {ids}")
        return ref

    # -- diffing -------------------------------------------------------------

    def diff(self, old_ref: Union[int, str], new_ref: Union[int, str]) -> CampaignDiff:
        """Compare two stored campaigns by scenario digest."""
        old_id = self.resolve(old_ref)
        new_id = self.resolve(new_ref)
        old = {digest: (name, outcome)
               for name, digest, outcome in self.outcome_digests(old_id)}
        diff = CampaignDiff(old_id=old_id, new_id=new_id)
        seen = set()
        for name, digest, outcome in self.outcome_digests(new_id):
            seen.add(digest)
            if digest not in old:
                diff.added.append((name, digest))
            elif old[digest][1] != outcome:
                diff.changed.append((name, digest, old[digest][1], outcome))
            else:
                diff.unchanged += 1
        for digest, (name, _outcome) in old.items():
            if digest not in seen:
                diff.removed.append((name, digest))
        return diff
