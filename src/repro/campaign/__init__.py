"""Scenario campaign service: declarative scenarios, parallel sweeps,
persistent results.

The paper's evaluation is a *grid* — benchmarks swept across core
counts, conflict densities, and cluster configurations — and this
package makes that grid a first-class artifact instead of a shell
loop:

* :mod:`repro.campaign.schema` — a validated declarative scenario
  schema (cluster config + workload + knobs + fault plan +
  expectations), loaded from JSON/YAML campaign files that expand
  bases x axes into hundreds of concrete scenarios;
* :mod:`repro.campaign.runner` — a sweep runner fanning scenarios
  across host cores via ``multiprocessing``, each child executing the
  deterministic engine and returning a byte-stable result record;
* :mod:`repro.campaign.store` — a SQLite results store keyed by
  scenario digest, powering aggregate reports and regression diffs
  (:mod:`repro.analysis.campaign`).

User guide: ``docs/CAMPAIGNS.md``.  CLI: ``repro campaign
run | report | diff | list``.
"""

from repro.campaign.runner import (
    RECORD_SCHEMA,
    ScenarioResult,
    run_campaign,
    run_scenario,
)
from repro.campaign.schema import (
    CampaignSpec,
    ExpectationSpec,
    FaultSpec,
    ScenarioSpec,
    load_campaign,
    loads_campaign,
    scenario_digest,
)
from repro.campaign.store import DEFAULT_STORE, CampaignDiff, CampaignStore

__all__ = [
    "CampaignSpec",
    "ScenarioSpec",
    "FaultSpec",
    "ExpectationSpec",
    "load_campaign",
    "loads_campaign",
    "scenario_digest",
    "ScenarioResult",
    "run_scenario",
    "run_campaign",
    "RECORD_SCHEMA",
    "CampaignStore",
    "CampaignDiff",
    "DEFAULT_STORE",
]
