"""Speedup measurement harness.

Thin helpers gluing workloads to the runtime for the evaluation
benches: run a plan at a core count, compare against the sequential
baseline, and aggregate geometric means (Figure 4's metric).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.core import DSMTXSystem, SystemConfig
from repro.core.stats import RunStats
from repro.errors import ConfigurationError

__all__ = ["ScalabilityPoint", "measure_speedup", "scalability_curve", "geomean"]


@dataclass
class ScalabilityPoint:
    """One (cores, speedup) measurement."""

    cores: int
    speedup: float
    elapsed_seconds: float
    sequential_seconds: float
    stats: RunStats


def measure_speedup(
    workload_factory: Callable[[], object],
    scheme: str,
    cores: int,
    config: Optional[SystemConfig] = None,
) -> ScalabilityPoint:
    """Run one workload under one scheme at one core count.

    ``workload_factory`` builds a fresh workload instance (runs mutate
    workload state); ``scheme`` selects ``dsmtx_plan`` or ``tls_plan``.
    """
    if scheme not in ("dsmtx", "tls"):
        raise ConfigurationError(f"scheme must be 'dsmtx' or 'tls', got {scheme!r}")
    base_config = config if config is not None else SystemConfig(total_cores=cores)
    run_config = base_config.with_cores(cores)

    sequential_workload = workload_factory()
    sequential_seconds = sequential_workload.sequential_seconds(run_config)

    workload = workload_factory()
    plan = workload.dsmtx_plan() if scheme == "dsmtx" else workload.tls_plan()
    system = DSMTXSystem(plan, run_config)
    result = system.run()
    return ScalabilityPoint(
        cores=cores,
        speedup=sequential_seconds / result.elapsed_seconds,
        elapsed_seconds=result.elapsed_seconds,
        sequential_seconds=sequential_seconds,
        stats=result.stats,
    )


def scalability_curve(
    workload_factory: Callable[[], object],
    scheme: str,
    core_counts: Sequence[int],
    config: Optional[SystemConfig] = None,
) -> list[ScalabilityPoint]:
    """Speedup at each core count (one Figure 4 line)."""
    points = []
    for cores in core_counts:
        workload = workload_factory()
        plan = workload.dsmtx_plan() if scheme == "dsmtx" else workload.tls_plan()
        if cores < plan.min_cores:
            continue
        points.append(measure_speedup(workload_factory, scheme, cores, config))
    return points


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (Figure 4(l)'s aggregate)."""
    values = list(values)
    if not values:
        raise ConfigurationError("geomean of no values")
    if any(v <= 0 for v in values):
        raise ConfigurationError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
