"""Bandwidth analysis (paper section 5.3, Figure 5(a)).

The paper computes each application's bandwidth requirement by dividing
the total data transferred via DSMTX by the application's execution
time, at three consecutive core counts starting from the number of
pipeline stages in the parallelization (plus the two speculation-
management units here, since those are cores too).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core import DSMTXSystem, SystemConfig

__all__ = ["BandwidthPoint", "bandwidth_requirement", "bandwidth_series"]


@dataclass
class BandwidthPoint:
    """Bandwidth measurement at one core count."""

    cores: int
    #: Total payload bytes through DSMTX (queues + COA).
    bytes_transferred: int
    elapsed_seconds: float

    @property
    def bandwidth_bps(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.bytes_transferred / self.elapsed_seconds

    @property
    def bandwidth_kbps(self) -> float:
        """kBps, the unit of Figure 5(a)."""
        return self.bandwidth_bps / 1e3


def bandwidth_requirement(
    workload_factory: Callable[[], object],
    cores: int,
    config: Optional[SystemConfig] = None,
) -> BandwidthPoint:
    """One Spec-DSWP run's bandwidth requirement."""
    base = config if config is not None else SystemConfig(total_cores=cores)
    system = DSMTXSystem(workload_factory().dsmtx_plan(), base.with_cores(cores))
    result = system.run()
    return BandwidthPoint(
        cores=cores,
        bytes_transferred=system.stats.queue_bytes,
        elapsed_seconds=result.elapsed_seconds,
    )


def bandwidth_series(
    workload_factory: Callable[[], object],
    config: Optional[SystemConfig] = None,
    points: int = 3,
) -> list[BandwidthPoint]:
    """Figure 5(a)'s series: ``points`` consecutive core counts starting
    at the minimum the parallelization runs on."""
    plan = workload_factory().dsmtx_plan()
    start = plan.min_cores
    return [
        bandwidth_requirement(workload_factory, cores, config)
        for cores in range(start, start + points)
    ]
