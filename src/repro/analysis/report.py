"""Plain-text rendering of the paper's tables and figures.

The bench harness prints the same rows and series the paper reports;
these helpers keep the formatting in one place: fixed-width tables and
simple ASCII line charts for the scalability curves.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["render_table", "render_series", "render_stacked_bars"]


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Fixed-width table with a header rule."""
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(
    series: Mapping[str, Mapping[int, float]],
    x_label: str = "cores",
    y_label: str = "speedup",
    title: str = "",
) -> str:
    """Tabular rendering of one or more (x -> y) series, the textual
    equivalent of a Figure 4 panel."""
    xs = sorted({x for points in series.values() for x in points})
    headers = [x_label] + list(series)
    rows = []
    for x in xs:
        row = [x]
        for name in series:
            value = series[name].get(x)
            row.append(f"{value:.1f}" if value is not None else "-")
        rows.append(row)
    caption = f"{title}  ({y_label} vs {x_label})" if title else ""
    return render_table(headers, rows, title=caption)


def render_stacked_bars(
    categories: Sequence[str],
    components: Mapping[str, Sequence[float]],
    unit: str = "",
    title: str = "",
) -> str:
    """Stacked-component table (the Figure 6 recovery breakdown)."""
    headers = ["category"] + list(components) + ["total"]
    rows = []
    for index, category in enumerate(categories):
        values = [components[name][index] for name in components]
        rows.append(
            [category]
            + [f"{value:.3f}" for value in values]
            + [f"{sum(values):.3f}"]
        )
    caption = f"{title} [{unit}]" if unit else title
    return render_table(headers, rows, title=caption)
