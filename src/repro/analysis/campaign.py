"""Aggregate reporting over campaign result records.

Consumes the canonical result records persisted by
:class:`repro.campaign.store.CampaignStore` (plain dicts; see
:meth:`repro.campaign.runner.ScenarioResult.record`) and renders the
three views ``repro campaign report``/``diff`` print:

* **speedup surfaces** — geomean speedup over the spec grid, one
  benchmark x cores table per scheme (the campaign-shaped analogue of
  the paper's Figure 4 panels);
* **recovery-latency distributions** — min/median/p90/max over every
  node-failure recovery episode in the sweep, plus lost-work and
  promotion totals (the resilience view ``repro chaos --seed-sweep``
  prints for one scenario, aggregated over hundreds);
* **digest regression diffs** — scenarios whose outcome digest moved
  between two stored campaigns (same scenario digest, different
  behavior).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.analysis.report import render_table
from repro.analysis.speedup import geomean

__all__ = [
    "quantile",
    "render_campaign_summary",
    "render_density_surface",
    "render_speedup_surfaces",
    "render_recovery_distribution",
    "render_campaign_diff",
]


def quantile(values: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of a non-empty value list (q in [0, 1])."""
    ordered = sorted(values)
    if not ordered:
        raise ValueError("quantile of no values")
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def _spread(values: Sequence[float], scale: float, unit: str) -> str:
    if not values:
        return "n/a"
    return (f"min {min(values) * scale:g}{unit}, "
            f"median {quantile(values, 0.5) * scale:g}{unit}, "
            f"p90 {quantile(values, 0.9) * scale:g}{unit}, "
            f"max {max(values) * scale:g}{unit}")


# -- speedup surfaces ------------------------------------------------------------


def render_speedup_surfaces(records: Sequence[Mapping]) -> str:
    """Benchmark x cores geomean-speedup table, one per scheme.

    Cells aggregate over every *other* swept axis (batch sizes, seeds,
    conflict densities, ...) with the geometric mean, so the table is
    the campaign's marginal speedup surface over the core-count axis.
    """
    sections = []
    schemes = sorted({r["scheme"] for r in records})
    for scheme in schemes:
        cells: dict[tuple, list] = {}
        for record in records:
            if record["scheme"] != scheme or record["speedup"] <= 0:
                continue
            cells.setdefault(
                (record["benchmark"], record["cores"]), []
            ).append(record["speedup"])
        if not cells:
            continue
        core_counts = sorted({cores for _b, cores in cells})
        benchmarks = sorted({bench for bench, _c in cells})
        rows = []
        for bench in benchmarks:
            row = [bench]
            for cores in core_counts:
                values = cells.get((bench, cores))
                row.append(f"{geomean(values):.1f}x" if values else "-")
            rows.append(row)
        sections.append(render_table(
            ["benchmark"] + [f"{c}c" for c in core_counts], rows,
            title=f"Speedup surface ({scheme}, geomean over other axes)",
        ))
    return "\n\n".join(sections)


# -- conflict density ------------------------------------------------------------


def render_density_surface(records: Sequence[Mapping]) -> str:
    """Per-density speedup surface: benchmark x density rows, one
    geomean-speedup column per scheme, plus the speculative_for-to-DSMTX
    ratio when both schemes ran the same cell.

    This is the conflict-density A/B view the reservations campaign
    reports: how each conflict-resolution paradigm degrades as the
    structural contention knob rises.  Empty string when no record
    carries a density (the campaign swept no irregular workload).
    """
    dense = [r for r in records
             if r.get("density") is not None and r["speedup"] > 0]
    if not dense:
        return ""
    schemes = sorted({r["scheme"] for r in dense})
    cells: dict[tuple, list] = {}
    for record in dense:
        key = (record["benchmark"], record["density"], record["scheme"])
        cells.setdefault(key, []).append(record["speedup"])
    rows = []
    ratio = "specfor" in schemes and "dsmtx" in schemes
    for bench, density in sorted({(r["benchmark"], r["density"])
                                  for r in dense}):
        row = [bench, f"{density:g}"]
        means = {}
        for scheme in schemes:
            values = cells.get((bench, density, scheme))
            means[scheme] = geomean(values) if values else None
            row.append(f"{means[scheme]:.2f}x" if values else "-")
        if ratio:
            sf, dx = means.get("specfor"), means.get("dsmtx")
            row.append(f"{sf / dx:.2f}" if sf and dx else "-")
        rows.append(row)
    headers = ["benchmark", "density"] + schemes
    if ratio:
        headers.append("specfor/dsmtx")
    return render_table(
        headers, rows,
        title="Conflict-density speedup surface (geomean over other axes)",
    )


# -- resilience ------------------------------------------------------------------


def render_recovery_distribution(records: Sequence[Mapping]) -> str:
    """Distribution of node-failure recovery latencies across the
    campaign; empty string when no scenario exercised a failover."""
    recoveries = [seconds for record in records
                  for seconds in record.get("recovery_seconds", ())]
    if not recoveries:
        return ""
    lost = sum(record.get("lost_iterations", 0) for record in records)
    promotions = sum(record.get("promotions", 0) for record in records)
    episodes = len(recoveries)
    scenarios = sum(1 for r in records if r.get("recovery_seconds"))
    lines = [
        f"failovers: {episodes} episode(s) across {scenarios} scenario(s), "
        f"{promotions} standby promotion(s)",
        f"recovery latency: {_spread(recoveries, 1e6, ' us')}",
        f"lost iterations:  {lost} total",
    ]
    return "\n".join(lines)


# -- summary ---------------------------------------------------------------------


def render_campaign_summary(records: Sequence[Mapping],
                            title: str = "") -> str:
    """The full ``repro campaign report`` body for one campaign."""
    sections = []
    total = len(records)
    ok = sum(1 for r in records if r["status"] == "ok")
    failed = sum(1 for r in records if r["status"] == "failed")
    errors = total - ok - failed
    header = (f"{total} scenario(s): {ok} ok, {failed} failed expectations, "
              f"{errors} errored")
    if title:
        header = f"{title}\n{header}"
    sections.append(header)

    misspecs = sum(r.get("misspeculations", 0) for r in records)
    sim_seconds = sum(r.get("elapsed_sim_seconds", 0.0) for r in records)
    wall = [r["wall_seconds"] for r in records if r.get("wall_seconds")]
    line = (f"simulated {sim_seconds * 1e3:.1f} ms across the sweep, "
            f"{misspecs} misspeculation(s)")
    if wall:
        line += f"; host wall {sum(wall):.1f} s ({_spread(wall, 1e3, ' ms')})"
    sections.append(line)

    surfaces = render_speedup_surfaces(records)
    if surfaces:
        sections.append(surfaces)
    density = render_density_surface(records)
    if density:
        sections.append(density)
    recovery = render_recovery_distribution(records)
    if recovery:
        sections.append(recovery)

    bad = [r for r in records if r["status"] != "ok"]
    if bad:
        rows = [[r["name"], r["status"], "; ".join(r.get("failures", []))[:72]]
                for r in bad[:20]]
        table = render_table(["scenario", "status", "why"], rows,
                             title="Scenarios not ok" +
                                   (f" (first 20 of {len(bad)})"
                                    if len(bad) > 20 else ""))
        sections.append(table)
    return "\n\n".join(sections)


# -- diffing ---------------------------------------------------------------------


def render_campaign_diff(diff, old_label: Optional[str] = None,
                         new_label: Optional[str] = None) -> str:
    """Human-readable regression diff of two stored campaigns."""
    old_label = old_label or f"campaign #{diff.old_id}"
    new_label = new_label or f"campaign #{diff.new_id}"
    sections = [
        f"{old_label} -> {new_label}: {diff.unchanged} unchanged, "
        f"{len(diff.changed)} changed, {len(diff.added)} added, "
        f"{len(diff.removed)} removed"
    ]
    if diff.changed:
        rows = [[name, digest[:12], old[:12], new[:12]]
                for name, digest, old, new in diff.changed]
        sections.append(render_table(
            ["scenario", "spec digest", "old outcome", "new outcome"], rows,
            title="Outcome digests that moved (same scenario spec)",
        ))
    if diff.added:
        rows = [[name, digest[:12]] for name, digest in diff.added]
        sections.append(render_table(
            ["scenario", "spec digest"], rows, title="Only in the new campaign"))
    if diff.removed:
        rows = [[name, digest[:12]] for name, digest in diff.removed]
        sections.append(render_table(
            ["scenario", "spec digest"], rows, title="Only in the old campaign"))
    if diff.clean:
        sections.append("no outcome drift: every shared scenario reproduced "
                        "its stored digest")
    return "\n\n".join(sections)
