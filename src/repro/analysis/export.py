"""CSV export of bench data, for external plotting.

The benches render plain-text tables; these helpers write the same
series/tables as CSV so the figures can be re-plotted with any tool.
"""

from __future__ import annotations

import csv
import io
import pathlib
from typing import Mapping, Sequence, Union

__all__ = ["series_to_csv", "table_to_csv", "write_csv"]


def series_to_csv(series: Mapping[str, Mapping[int, float]],
                  x_label: str = "cores") -> str:
    """CSV text for one or more (x -> y) series (a Figure 4 panel)."""
    xs = sorted({x for points in series.values() for x in points})
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([x_label] + list(series))
    for x in xs:
        row: list = [x]
        for name in series:
            value = series[name].get(x)
            row.append("" if value is None else value)
        writer.writerow(row)
    return buffer.getvalue()


def table_to_csv(headers: Sequence[str], rows) -> str:
    """CSV text for a generic table."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow(list(row))
    return buffer.getvalue()


def write_csv(path: Union[str, pathlib.Path], text: str) -> pathlib.Path:
    """Write CSV text to ``path``, creating parent directories."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path
