"""Resilience reporting and byte-stable run digests.

Two jobs:

* **Digesting.**  A chaos run's claim to determinism is only testable if
  the run's observable outcome can be reduced to one string.
  :func:`run_fingerprint` renders everything that matters — elapsed
  time, commit counts, committed master memory word-for-word, failure
  and checkpoint records, transport and chaos counters — with ``repr``
  floats (shortest round-trip), so a drift of one ulp or one retransmit
  moves :func:`run_digest`.  Fault-tolerance and chaos lines appear only
  when those features produced anything, so the fingerprint of a plain
  run is unchanged by their existence.

* **Reporting.**  :func:`render_resilience_report` turns the same
  records into the human-readable summary ``repro chaos`` prints:
  what failed and when, how long detection and the degraded-mode
  restart took, how much speculative work was lost, and what the
  reliable transport absorbed along the way.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro.analysis.report import render_table

__all__ = [
    "memory_fingerprint",
    "run_fingerprint",
    "run_digest",
    "render_resilience_report",
]


def memory_fingerprint(space) -> list:
    """Canonical (page, sorted word items) view of an address space.

    The committed master memory reduced this way is the run's *result*:
    two runs that agree here computed the same thing, whatever happened
    to the cluster in between.

    Pages with no written words are skipped: a master page materializes
    on first *read* (an artifact of the sparse page table, not program
    state) and reads back all-zero either way, so an untouched-but-
    materialized page and an absent one are the same memory.
    """
    return [
        (page.number, items)
        for page in space.iter_pages()
        if (items := tuple(sorted(page.items())))
    ]


def run_fingerprint(stats, master=None, chaos=None) -> str:
    """Canonical text of one run's observable outcome.

    ``master`` is the commit unit's committed address space (included
    word-for-word when given); ``chaos`` the
    :class:`~repro.chaos.engine.ChaosEngine` that ran the plan, if any.
    """
    lines = [
        f"elapsed_seconds={stats.elapsed_seconds!r}",
        f"committed_mtxs={stats.committed_mtxs}",
        f"misspeculations={stats.misspeculations}",
        f"words_committed={stats.words_committed}",
        f"queue_bytes={stats.queue_bytes}",
    ]
    if master is not None:
        for number, items in memory_fingerprint(master):
            lines.append(f"page[{number}]={items!r}")
    # Conditional sections: absent features leave no trace, so digests
    # of plain runs are comparable across versions that predate them.
    ft_counters = (
        ("heartbeats", stats.ft_heartbeats),
        ("acks", stats.ft_acks),
        ("retransmits", stats.ft_retransmits),
        ("retransmit_giveups", stats.ft_retransmit_giveups),
        ("duplicates_dropped", stats.ft_duplicates_dropped),
        ("frames_reordered", stats.ft_frames_reordered),
        ("frames_from_dead_dropped", stats.ft_frames_from_dead_dropped),
    )
    if any(value for _name, value in ft_counters):
        lines.extend(f"ft.{name}={value}" for name, value in ft_counters)
    repl_counters = (
        ("repl_words", stats.ft_repl_words),
        ("repl_folded_words", stats.ft_repl_folded_words),
        ("promotions", stats.ft_promotions),
        ("replayed_words", stats.ft_replayed_words),
    )
    if any(value for _name, value in repl_counters):
        lines.extend(f"ft.{name}={value}" for name, value in repl_counters)
    # Own conditional line (not folded into repl_counters) so digests of
    # pipeline failover runs, which predate the counter, are unchanged.
    if stats.ft_round_reexecutions:
        lines.append(f"ft.round_reexecutions={stats.ft_round_reexecutions}")
    # Integrity counters: only an integrity-mode run that detected (or
    # audited) anything prints them, so prior digests are unchanged.
    integrity_counters = (
        ("corruptions_detected", stats.ft_corruptions_detected),
        ("corruptions_repaired", stats.ft_corruptions_repaired),
        ("corruptions_unrepairable", stats.ft_corruptions_unrepairable),
        ("scrub_rounds", stats.ft_scrub_rounds),
        ("scrub_pages", stats.ft_scrub_pages),
    )
    if any(value for _name, value in integrity_counters):
        lines.extend(
            f"ft.{name}={value}" for name, value in integrity_counters
        )
    # speculative_for runs only: rounds of the deterministic-reservations
    # scheduler.  Pipeline runs leave these at zero and print nothing.
    if stats.specfor_rounds:
        specfor_counters = (
            ("rounds", stats.specfor_rounds),
            ("reservations", stats.specfor_reservations),
            ("reservation_failures", stats.specfor_reservation_failures),
            ("commit_failures", stats.specfor_commit_failures),
            ("carried", stats.specfor_carried),
        )
        lines.extend(f"specfor.{name}={value}" for name, value in specfor_counters)
    for record in stats.failures:
        line = (
            "failure("
            f"node={record.node}, "
            f"dead_tids={record.dead_tids}, "
            f"last_heard_at={record.last_heard_at!r}, "
            f"detected_at={record.detected_at!r}, "
            f"resumed_at={record.resumed_at!r}, "
            f"restart_base={record.restart_base}, "
            f"lost_iterations={record.lost_iterations}, "
            f"surviving_workers={record.surviving_workers}"
        )
        if record.promoted_tid >= 0:
            line += (
                f", promoted_tid={record.promoted_tid}"
                f", promotion_seconds={record.promotion_seconds!r}"
                f", replayed_words={record.replayed_words}"
                f", recommitted_iterations={record.recommitted_iterations}"
            )
        if record.corrupt_image:
            line += ", corrupt_image=True"
        lines.append(line + ")")
    for record in stats.checkpoints:
        lines.append(
            f"checkpoint(iteration={record.iteration}, "
            f"words={record.words}, at={record.at!r})"
        )
    if chaos is not None:
        summary = chaos.summary()
        for node, at_s in summary["crashes"]:
            lines.append(f"chaos.crash(node={node}, at={at_s!r})")
        for name in ("messages_dropped", "messages_duplicated", "messages_delayed"):
            lines.append(f"chaos.{name}={summary[name]}")
        # Corruption keys exist only when the plan schedules corruption
        # faults; older plans' digests are untouched.
        if "messages_corrupted" in summary:
            lines.append(
                f"chaos.messages_corrupted={summary['messages_corrupted']}"
            )
        for target, at_s, words in summary.get("state_corruptions", ()):
            lines.append(
                f"chaos.state_corruption(target={target!r}, at={at_s!r}, "
                f"words={words})"
            )
    return "\n".join(lines)


def run_digest(stats, master=None, chaos=None) -> str:
    """sha256 of :func:`run_fingerprint`."""
    return hashlib.sha256(
        run_fingerprint(stats, master=master, chaos=chaos).encode()
    ).hexdigest()


def render_resilience_report(stats, chaos=None, reference=None) -> str:
    """Human-readable resilience summary of one (usually chaotic) run.

    ``reference`` is the fault-free :class:`RunStats` of the same
    workload, if one was measured; the report then quotes the overhead
    the faults and recovery added.
    """
    sections = []

    if chaos is not None:
        summary = chaos.summary()
        rows = [[f"node {node}", f"{at_s * 1e3:.3f} ms"]
                for node, at_s in summary["crashes"]]
        if rows:
            sections.append(render_table(["crashed", "at"], rows,
                                         title="Injected crashes"))
        wire_line = (
            "wire faults: "
            f"{summary['messages_dropped']} dropped, "
            f"{summary['messages_duplicated']} duplicated, "
            f"{summary['messages_delayed']} delayed"
        )
        if "messages_corrupted" in summary:
            wire_line += f", {summary['messages_corrupted']} corrupted"
        sections.append(wire_line)
        corruptions = summary.get("state_corruptions", ())
        if corruptions:
            rows = [[target, f"{at_s * 1e3:.3f} ms", str(words)]
                    for target, at_s, words in corruptions]
            sections.append(render_table(
                ["target", "at", "words flipped"], rows,
                title="Injected state corruption (silent bit flips)",
            ))

    if stats.failures:
        rows = []
        for record in stats.failures:
            rows.append([
                f"node {record.node}",
                f"{record.detected_at * 1e3:.3f} ms",
                f"{(record.detected_at - record.last_heard_at) * 1e6:.0f} us",
                f"{record.recovery_seconds * 1e6:.0f} us",
                str(record.lost_iterations),
                str(record.surviving_workers),
            ])
        sections.append(render_table(
            ["failure", "detected", "detection lag", "restart", "lost MTXs",
             "survivors"],
            rows, title="Failovers (degraded-mode restarts)",
        ))

    promoted = [r for r in stats.failures if r.promoted_tid >= 0]
    if promoted:
        rows = [[
            f"node {record.node}",
            f"tid {record.promoted_tid}",
            f"{record.promotion_seconds * 1e6:.2f} us",
            str(record.replayed_words),
            str(record.recommitted_iterations),
        ] for record in promoted]
        sections.append(render_table(
            ["failure", "promoted standby", "promotion", "replayed words",
             "recommitted MTXs"],
            rows, title="Commit-unit failovers (standby promotions)",
        ))

    ft_lines = []
    if stats.ft_heartbeats:
        ft_lines.append(
            f"transport: {stats.ft_acks} acks, {stats.ft_retransmits} "
            f"retransmits ({stats.ft_retransmit_giveups} give-ups), "
            f"{stats.ft_duplicates_dropped} duplicates dropped, "
            f"{stats.ft_frames_reordered} reordered, "
            f"{stats.ft_frames_from_dead_dropped} from dead nodes dropped"
        )
        ft_lines.append(f"heartbeats: {stats.ft_heartbeats}")
    if stats.checkpoints:
        words = sum(record.words for record in stats.checkpoints)
        ft_lines.append(
            f"checkpoints: {len(stats.checkpoints)} ({words} words)"
        )
    if stats.ft_repl_words:
        ft_lines.append(
            f"replication: {stats.ft_repl_words} words streamed to the "
            f"standby, {stats.ft_repl_folded_words} folded into its image"
        )
    if stats.ft_round_reexecutions:
        ft_lines.append(
            f"round re-execution: {stats.ft_round_reexecutions} reservation "
            f"round(s) voided by a worker crash and re-issued to the "
            f"survivors"
        )
    if stats.ft_corruptions_detected or stats.ft_scrub_rounds:
        ft_lines.append(
            f"integrity: {stats.ft_corruptions_detected} corruption(s) "
            f"detected, {stats.ft_corruptions_repaired} repaired, "
            f"{stats.ft_corruptions_unrepairable} unrepairable; "
            f"{stats.ft_scrub_pages} page audits over "
            f"{stats.ft_scrub_rounds} scrub sweep(s)"
        )
    refused = [r for r in stats.failures if r.corrupt_image]
    if refused:
        ft_lines.append(
            "promotion refused: the standby checkpoint image failed its "
            "digest check on "
            + ", ".join(f"node {r.node}" for r in refused)
            + " (corrupted state was not promoted)"
        )
    if ft_lines:
        sections.append("\n".join(ft_lines))

    outcome = (
        f"outcome: {stats.committed_mtxs} MTXs committed in "
        f"{stats.elapsed_seconds * 1e3:.3f} ms simulated"
    )
    if reference is not None and reference.elapsed_seconds > 0:
        overhead = stats.elapsed_seconds / reference.elapsed_seconds - 1.0
        outcome += (
            f" ({overhead * 100.0:+.1f}% vs fault-free "
            f"{reference.elapsed_seconds * 1e3:.3f} ms)"
        )
    sections.append(outcome)
    return "\n\n".join(sections)
