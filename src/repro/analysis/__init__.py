"""Measurement and reporting helpers for the evaluation benches:
speedup curves and geometric means (Figure 4), bandwidth accounting
(Figure 5), and text rendering of tables and series."""

from repro.analysis.export import series_to_csv, table_to_csv, write_csv
from repro.analysis.campaign import (
    render_campaign_diff,
    render_campaign_summary,
    render_density_surface,
    render_recovery_distribution,
    render_speedup_surfaces,
)
from repro.analysis.bandwidth import (
    BandwidthPoint,
    bandwidth_requirement,
    bandwidth_series,
)
from repro.analysis.report import render_series, render_stacked_bars, render_table
from repro.analysis.resilience import (
    memory_fingerprint,
    render_resilience_report,
    run_digest,
    run_fingerprint,
)
from repro.analysis.timeline import (
    attribution,
    render_attribution,
    render_timeline,
)
from repro.analysis.speedup import (
    ScalabilityPoint,
    geomean,
    measure_speedup,
    scalability_curve,
)

__all__ = [
    "ScalabilityPoint",
    "measure_speedup",
    "scalability_curve",
    "geomean",
    "BandwidthPoint",
    "bandwidth_requirement",
    "bandwidth_series",
    "render_table",
    "render_series",
    "render_stacked_bars",
    "render_campaign_summary",
    "render_campaign_diff",
    "render_density_surface",
    "render_recovery_distribution",
    "render_speedup_surfaces",
    "attribution",
    "render_attribution",
    "render_timeline",
    "memory_fingerprint",
    "run_fingerprint",
    "run_digest",
    "render_resilience_report",
    "series_to_csv",
    "table_to_csv",
    "write_csv",
]
