"""Text-mode timeline and time-attribution views over a trace.

Works directly on a :class:`repro.obs.SpanTracer` (or any object with a
compatible ``events`` list), so the same data that feeds the Perfetto
export can be inspected without leaving the terminal:

* :func:`attribution` / :func:`render_attribution` — sum the duration of
  every complete ("X") span per category and report counts, totals and
  the share of simulated elapsed time.  Categories *nest* (a
  ``worker.compute`` span contains the ``page_fault`` spans its COA
  fetches produce), so the shares can legitimately sum past 100%.
* :func:`render_timeline` — an ASCII chart with one row per (pid, tid)
  track and one column per time bucket; each cell shows the letter of
  the category that occupied most of that bucket, so pipeline phases,
  commit rounds and recovery episodes are visible at a glance.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro.analysis.report import render_table

__all__ = [
    "attribution",
    "render_attribution",
    "render_timeline",
]


def attribution(tracer) -> Dict[str, Tuple[int, float]]:
    """Per-category ``(span_count, total_duration_us)`` over all "X" events."""
    out: Dict[str, List[float]] = {}
    for event in tracer.events:
        if event.ph != "X":
            continue
        bucket = out.setdefault(event.cat, [0, 0.0])
        bucket[0] += 1
        bucket[1] += event.dur
    return {cat: (int(count), dur) for cat, (count, dur) in out.items()}


def render_attribution(tracer, elapsed_us: float | None = None) -> str:
    """Fixed-width attribution table, largest total first.

    ``elapsed_us`` defaults to the last event timestamp seen by the
    tracer.  Because spans nest, the ``share`` column is per-category
    (time-in-category over elapsed), not a partition of the run.
    """
    attrib = attribution(tracer)
    if elapsed_us is None:
        elapsed_us = tracer.last_ts()
    rows = []
    for cat, (count, dur) in sorted(
        attrib.items(), key=lambda item: item[1][1], reverse=True
    ):
        share = (dur / elapsed_us * 100.0) if elapsed_us > 0 else 0.0
        rows.append([cat, count, f"{dur:,.1f}", f"{share:.1f}%"])
    return render_table(
        ["category", "spans", "total us", "share"],
        rows,
        title="time attribution (spans nest; shares may exceed 100%)",
    )


def _track_label(tracer, pid: int, tid: int) -> str:
    name = tracer.thread_names.get((pid, tid))
    if name:
        return name
    return f"pid{pid}/tid{tid}"


def render_timeline(tracer, width: int = 72) -> str:
    """ASCII timeline: one row per (pid, tid) track, ``width`` columns.

    Each column is one time bucket; the cell shows the letter assigned
    to the category whose spans covered the most of that bucket on that
    track ("." when idle).  A legend maps letters back to categories.
    """
    spans = [e for e in tracer.events if e.ph == "X" and e.dur > 0]
    if not spans:
        return "(no spans recorded)"
    end = max(e.ts + e.dur for e in spans)
    begin = min(e.ts for e in spans)
    extent = max(end - begin, 1e-9)
    bucket_us = extent / width

    categories = sorted({e.cat for e in spans})
    letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
    letter_of = {cat: letters[i % len(letters)] for i, cat in enumerate(categories)}

    # (pid, tid) -> per-bucket {category: covered_us}
    tracks: Dict[Tuple[int, int], List[Dict[str, float]]] = {}
    for e in spans:
        row = tracks.setdefault((e.pid, e.tid), [dict() for _ in range(width)])
        first = int((e.ts - begin) / bucket_us)
        last = int((e.ts + e.dur - begin) / bucket_us)
        for b in range(max(first, 0), min(last, width - 1) + 1):
            lo = begin + b * bucket_us
            hi = lo + bucket_us
            covered = min(e.ts + e.dur, hi) - max(e.ts, lo)
            if covered > 0:
                cell = row[b]
                cell[e.cat] = cell.get(e.cat, 0.0) + covered

    labels = {key: _track_label(tracer, *key) for key in tracks}
    label_width = max(len(label) for label in labels.values())
    lines = [f"timeline  ({extent:,.1f} us across {width} buckets)"]
    for key in sorted(tracks):
        cells = []
        for cell in tracks[key]:
            if not cell:
                cells.append(".")
            else:
                dominant = max(cell.items(), key=lambda item: item[1])[0]
                cells.append(letter_of[dominant])
        lines.append(f"{labels[key].rjust(label_width)} |{''.join(cells)}|")
    lines.append("legend: " + "  ".join(
        f"{letter_of[cat]}={cat}" for cat in categories
    ))
    return "\n".join(lines)
