"""Table 2: the benchmark suite — paradigms and speculation types.

Regenerates the paper's Table 2 from the workload registry and checks
every row against the paper's values.
"""

from _common import write_report
from repro.analysis import render_table
from repro.paradigms import parse_plan
from repro.workloads import SPECULATION_LEGEND, table2_rows

#: Table 2 of the paper, verbatim.
PAPER_TABLE2 = {
    "052.alvinn": ("SPEC CFP 92", "Spec-DOALL", "MV"),
    "130.li": ("SPEC CINT 95", "DSWP+[Spec-DOALL,S]", "CFS/MVS/MV"),
    "164.gzip": ("SPEC CINT 2000", "Spec-DSWP+[S,DOALL,S]", "MV"),
    "179.art": ("SPEC CFP 2000", "Spec-DSWP+[S,DOALL,S]", "MV"),
    "197.parser": ("SPEC CINT 2000", "Spec-DSWP+[S,DOALL,S]", "CFS/MVS/MV"),
    "256.bzip2": ("SPEC CINT 2000", "Spec-DSWP+[S,DOALL,S]", "CFS/MV"),
    "456.hmmer": ("SPEC CINT 2006", "Spec-DSWP+[DOALL,S]", "MV"),
    "464.h264ref": ("SPEC CINT 2006", "Spec-DSWP+[DOALL,S]", "MV"),
    "crc32": ("Ref. Impl.", "DSWP+[Spec-DOALL,S]", "CFS/MV"),
    "blackscholes": ("PARSEC", "DSWP+[Spec-DOALL,S]", "CFS"),
    "swaptions": ("PARSEC", "Spec-DOALL", "CFS"),
}


def _build_table():
    rows = table2_rows()
    report = render_table(
        ["Benchmark", "Source Suite", "Description", "Parallelization Paradigm",
         "Speculation Types"],
        [[r["benchmark"], r["suite"], r["description"], r["paradigm"],
          r["speculation"]] for r in rows],
        title="Table 2: Benchmark Details",
    )
    legend = ", ".join(f"{k} = {v}" for k, v in SPECULATION_LEGEND.items())
    write_report("table2_benchmarks", report + "\n" + legend)
    return rows


def bench_table2_registry(benchmark):
    rows = benchmark.pedantic(_build_table, rounds=1, iterations=1)
    assert len(rows) == 11
    for row in rows:
        suite, paradigm, speculation = PAPER_TABLE2[row["benchmark"]]
        assert row["suite"] == suite
        assert row["paradigm"] == paradigm
        assert row["speculation"] == speculation
        parsed = parse_plan(row["paradigm"])  # every paradigm string is valid
        assert parsed.technique in ("DSWP", "DOALL")
