"""Figure 1(c,d): DSWP tolerates inter-core latency, DOACROSS does not.

Reproduces the paper's motivating numbers on the Figure 1(a) loop with
2 cores: at a 1-cycle latency both techniques sustain 2 cycles/iteration
(speedup 2x); raising the latency to 2 cycles drops DOACROSS to 3
cycles/iteration (1.33x) while DSWP holds 2x.
"""

import pytest

from _common import write_report
from repro.analysis import render_table
from repro.paradigms import doacross_schedule, dswp_schedule, example_list_loop

ITERATIONS = 400
SEQUENTIAL_CYCLES = 4.0  # four 1-cycle statements


def _sweep():
    pdg = example_list_loop().speculate()
    rows = []
    results = {}
    for latency in (1.0, 2.0, 4.0, 8.0):
        doacross = doacross_schedule(pdg, cores=2, iterations=ITERATIONS,
                                     latency=latency)
        dswp, _stages = dswp_schedule(pdg, cores=2, iterations=ITERATIONS,
                                      latency=latency)
        results[latency] = (doacross, dswp)
        rows.append([
            f"{latency:.0f}",
            f"{doacross.cycles_per_iteration:.2f}",
            f"{doacross.speedup_over(SEQUENTIAL_CYCLES):.2f}x",
            f"{dswp.cycles_per_iteration:.2f}",
            f"{dswp.speedup_over(SEQUENTIAL_CYCLES):.2f}x",
        ])
    report = render_table(
        ["latency (cyc)", "DOACROSS cyc/iter", "DOACROSS speedup",
         "DSWP cyc/iter", "DSWP speedup"],
        rows,
        title="Figure 1(c,d): latency tolerance on the list-traversal loop "
              "(2 cores)",
    )
    write_report("fig1_latency_tolerance", report)
    return results


def bench_fig1_latency_tolerance(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    doacross_1, dswp_1 = results[1.0]
    doacross_2, dswp_2 = results[2.0]
    # Paper's exact Figure 1 numbers.
    assert doacross_1.cycles_per_iteration == pytest.approx(2.0)
    assert doacross_2.cycles_per_iteration == pytest.approx(3.0)
    assert dswp_1.cycles_per_iteration == pytest.approx(2.0)
    assert dswp_2.cycles_per_iteration == pytest.approx(2.0)
    # DSWP stays flat even at high latency.
    _, dswp_8 = results[8.0]
    assert dswp_8.cycles_per_iteration == pytest.approx(2.0)
