"""Figure 5(a): per-application bandwidth requirements.

The paper computes each application's bandwidth as total data moved
through DSMTX divided by execution time, at three consecutive core
counts starting from the parallelization's minimum.  The shape claims
(section 5.3):

* 164.gzip has by far the highest bandwidth requirement;
* 256.bzip2 moves a similar amount of data but computes much more, so
  its bandwidth is far lower — explaining their different speedups;
* bandwidth grows as cores are added (more workers pulling data);
* 052.alvinn and 197.parser grow steeply with thread count, which is
  what eventually caps their speedup.
"""

from _common import write_report
from repro.analysis import bandwidth_series, render_table
from repro.workloads import BENCHMARKS


def _measure():
    table = {}
    rows = []
    for name, factory in BENCHMARKS.items():
        series = bandwidth_series(factory, points=3)
        table[name] = series
        rows.append(
            [name]
            + [f"{point.cores}c: {point.bandwidth_kbps:,.0f}" for point in series]
        )
    report = render_table(
        ["benchmark", "min cores", "+1 core", "+2 cores"],
        rows,
        title="Figure 5(a): bandwidth requirement (kBps) at three "
              "consecutive core counts",
    )
    write_report("fig5a_bandwidth", report)
    return table


def bench_fig5a_bandwidth(benchmark):
    table = benchmark.pedantic(_measure, rounds=1, iterations=1)

    def bandwidth(name, index=-1):
        return table[name][index].bandwidth_bps

    # gzip tops the chart.
    others = [bandwidth(n) for n in table if n != "164.gzip"]
    assert bandwidth("164.gzip") > max(others)
    # bzip2 moves similar data but at much lower bandwidth than gzip.
    assert bandwidth("256.bzip2") < 0.5 * bandwidth("164.gzip")
    # Bandwidth demand grows with core count for the pipeline benchmarks.
    for name in ("164.gzip", "197.parser", "256.bzip2"):
        series = table[name]
        assert series[-1].bandwidth_bps > series[0].bandwidth_bps
    # art's bandwidth is tiny in comparison (the paper's 2,009 kBps bar).
    assert bandwidth("179.art") < 0.1 * bandwidth("164.gzip")
