"""Section 5.3 microbenchmark: sustained queue bandwidth.

The paper measures, for streams of 8-byte data: DSMTX queues sustain
480.7 MBps, while direct MPI_Send / MPI_Bsend / MPI_Isend provide 13.1,
12.7, and 8.1 MBps — the 37x gap that motivates batching.
"""

import pytest

from _common import write_report
from repro.analysis import render_table
from repro.cluster import (
    MPI,
    Channel,
    ClusterSpec,
    Interconnect,
    Machine,
    MPIVariant,
)
from repro.sim import Environment

MESSAGES = 20_000
PAYLOAD_BYTES = 8

PAPER_MBPS = {
    "DSMTX queue": 480.7,
    "MPI_Send": 13.1,
    "MPI_Bsend": 12.7,
    "MPI_Isend": 8.1,
}


def _make_fabric():
    env = Environment()
    machine = Machine(env, ClusterSpec(nodes=4, cores_per_node=4))
    mpi = MPI(env, machine, Interconnect(env, machine))
    return env, mpi


def _queue_bandwidth():
    env, mpi = _make_fabric()
    channel = Channel(mpi, src_core=0, dst_core=4, name="stream", item_bytes=PAYLOAD_BYTES)
    done = env.event()

    def producer():
        for index in range(MESSAGES):
            yield from channel.produce(index)
        yield from channel.flush_pending()

    def consumer():
        for _ in range(MESSAGES):
            yield from channel.consume()
        core = mpi.machine.core(4)
        yield from core.drain()
        done.succeed(env.now)

    env.process(producer())
    env.process(consumer())
    elapsed = env.run(until=done)
    return MESSAGES * PAYLOAD_BYTES / elapsed


def _mpi_bandwidth(variant):
    env, mpi = _make_fabric()
    done = env.event()
    count = MESSAGES // 4  # raw MPI is slow; a shorter stream suffices

    def sender():
        for index in range(count):
            yield from mpi.send(0, 4, index, nbytes=PAYLOAD_BYTES, variant=variant)

    def receiver():
        for _ in range(count):
            yield from mpi.recv(4, 0)
        done.succeed(env.now)

    env.process(sender())
    env.process(receiver())
    elapsed = env.run(until=done)
    return count * PAYLOAD_BYTES / elapsed


def _measure():
    measured = {
        "DSMTX queue": _queue_bandwidth(),
        "MPI_Send": _mpi_bandwidth(MPIVariant.SEND),
        "MPI_Bsend": _mpi_bandwidth(MPIVariant.BSEND),
        "MPI_Isend": _mpi_bandwidth(MPIVariant.ISEND),
    }
    rows = [
        [name, f"{measured[name] / 1e6:.1f}", f"{PAPER_MBPS[name]:.1f}"]
        for name in measured
    ]
    report = render_table(
        ["transport", "measured (MBps)", "paper (MBps)"],
        rows,
        title="Section 5.3: sustained bandwidth for 8-byte produces",
    )
    write_report("queue_bandwidth", report)
    return measured


def bench_queue_bandwidth(benchmark):
    measured = benchmark.pedantic(_measure, rounds=1, iterations=1)
    for name, paper_mbps in PAPER_MBPS.items():
        assert measured[name] == pytest.approx(paper_mbps * 1e6, rel=0.10), name
    # The ordering the paper reports.
    assert (measured["DSMTX queue"] > measured["MPI_Send"]
            > measured["MPI_Bsend"] > measured["MPI_Isend"])
    assert measured["DSMTX queue"] > 30 * measured["MPI_Send"]
