"""Ablation: Copy-On-Access granularity (paper section 4.2).

The paper argues that COA at word granularity would be prohibitive on a
cluster — every word costs a round trip — while page granularity
aggressively speculates that nearby words will be needed, acting as a
constructive prefetcher.  This bench runs a scan kernel with genuine
spatial locality (many words read per page) under both granularities.
"""

from _common import observed_run, write_report
from repro.analysis import render_table
from repro.core import DSMTXSystem, PipelineConfig, SystemConfig
from repro.workloads import ParallelPlan, Workload
from repro.memory import PAGE_BYTES

WORDS_PER_ITERATION = 32
CORES = 16


class ScanKernel(Workload):
    """Reads a dense run of words per iteration — the spatial-locality
    pattern COA's page granularity is designed for."""

    name = "scan-kernel"
    suite = "ablation"
    description = "dense table scan"
    paradigm = "Spec-DOALL"
    speculation = ()

    def __init__(self, iterations=256, misspec_iterations=None):
        super().__init__(iterations, misspec_iterations)

    def build(self, uva, owner, store):
        total_words = self.iterations * WORDS_PER_ITERATION
        self.table_base = uva.malloc_page_aligned(owner, total_words * 8)
        self.out_base = uva.malloc_page_aligned(owner, self.iterations * 8)
        for word in range(0, total_words, 8):
            store.write(self.table_base + 8 * word, word + 1)

    def sequential_body(self, ctx):
        i = ctx.iteration
        total = 0
        for word in range(WORDS_PER_ITERATION):
            value = yield from ctx.load(
                self.table_base + 8 * (i * WORDS_PER_ITERATION + word))
            total += value if isinstance(value, int) else 0
        ctx.compute(40_000)
        yield from ctx.store(self.out_base + 8 * i, total, forward=False)

    def dsmtx_plan(self):
        return ParallelPlan(self, "dsmtx", PipelineConfig.from_kinds(["DOALL"]),
                            [self.sequential_body], label="Spec-DOALL")

    def tls_plan(self):
        return self.dsmtx_plan()


def _measure():
    results = {}
    rows = []
    for granularity, page_mode in (("page (DSMTX)", True), ("word", False)):
        config = SystemConfig(total_cores=CORES, coa_page_granularity=page_mode)
        workload = ScanKernel()
        system = DSMTXSystem(workload.dsmtx_plan(), config)
        run = observed_run(system)
        transfers = (system.stats.coa_pages_served if page_mode
                     else system.stats.coa_words_served)
        results[granularity] = (run.elapsed_seconds, transfers)
        rows.append([granularity, f"{run.elapsed_seconds * 1e3:.2f}",
                     transfers])
    report = render_table(
        ["COA granularity", "run time (ms)", "COA transfers"],
        rows,
        title=f"Ablation: COA granularity on a dense scan "
              f"({WORDS_PER_ITERATION} words/iteration, {CORES} cores)",
    )
    write_report("ablation_coa_granularity", report)
    return results


def bench_ablation_coa_granularity(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)
    page_time, page_transfers = results["page (DSMTX)"]
    word_time, word_transfers = results["word"]
    # Word granularity needs a round trip per word: far more transfers
    # and a clearly slower run — the paper's argument for pages.
    assert word_transfers > 4 * page_transfers
    assert word_time > 1.5 * page_time
