"""Ablation: queue batch size (paper section 5.4's closing trade-off).

"Reducing the communication batch size can help reduce RFP overhead,
but it may degrade performance during normal execution."  This bench
sweeps the batch size on 197.parser with and without misspeculation:
small batches detect misspeculation sooner (less squashed run-ahead),
large batches amortize the MPI call overhead better.
"""

from _common import observed_run, write_report
from repro.analysis import render_table
from repro.core import DSMTXSystem, SystemConfig
from repro.workloads import Parser

CORES = 32
BATCH_SIZES = (256, 1024, 4096, 16384)
ITERATIONS = 1024
MISSPEC = set(range(199, ITERATIONS, 200))


def _run(batch_bytes, misspec):
    workload = Parser(iterations=ITERATIONS,
                      misspec_iterations=misspec if misspec else set())
    config = SystemConfig(total_cores=CORES, batch_bytes=batch_bytes)
    system = DSMTXSystem(workload.dsmtx_plan(), config)
    result = observed_run(system)
    return result.elapsed_seconds, system.stats


def _measure():
    results = {}
    rows = []
    for batch_bytes in BATCH_SIZES:
        clean_seconds, _ = _run(batch_bytes, misspec=None)
        degraded_seconds, stats = _run(batch_bytes, misspec=MISSPEC)
        overhead = max(0.0, degraded_seconds - clean_seconds)
        accounted = stats.erm_seconds + stats.flq_seconds + stats.seq_seconds
        refill = max(0.0, overhead - accounted)
        results[batch_bytes] = {
            "clean": clean_seconds,
            "degraded": degraded_seconds,
            "rfp": refill,
        }
        rows.append([batch_bytes, f"{clean_seconds * 1e3:.2f}",
                     f"{degraded_seconds * 1e3:.2f}", f"{refill * 1e6:.0f}"])
    report = render_table(
        ["batch (bytes)", "clean (ms)", "0.5% misspec (ms)", "RFP (us)"],
        rows,
        title=f"Ablation: queue batch size on 197.parser ({CORES} cores)",
    )
    write_report("ablation_batch_size", report)
    return results


def bench_ablation_batch_size(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)
    # Larger batches are at least as good for clean execution...
    assert results[4096]["clean"] <= results[256]["clean"] * 1.05
    # ...but accumulate more squashable run-ahead: RFP grows with batch
    # size (the section 5.4 trade-off).
    assert results[16384]["rfp"] >= results[256]["rfp"]
