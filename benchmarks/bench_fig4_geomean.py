"""Figure 4(l): geometric-mean speedup across the 11 benchmarks.

The paper's headline result: on the 128-core cluster, DSMTX (taking the
better of Spec-DSWP and TLS per benchmark, "DSMTX Best") achieves a
geomean speedup of 49x, versus 15x for TLS-only support — roughly a
3x advantage.  This bench regenerates the three Figure 4(l) curves
(Spec-DSWP, TLS, DSMTX Best) and checks the shape: DSMTX in the tens at
128 cores, well ahead of TLS.
"""

from _common import CORE_COUNTS, write_report
from fig4_data import figure4_point
from repro.analysis import geomean, render_series
from repro.workloads import BENCHMARKS


def _geomean_curves():
    curves = {"Spec-DSWP": {}, "TLS": {}, "DSMTX Best": {}}
    for cores in CORE_COUNTS:
        dsmtx_points = []
        tls_points = []
        best_points = []
        for name in BENCHMARKS:
            dsmtx = figure4_point(name, "dsmtx", cores)
            tls = figure4_point(name, "tls", cores)
            if dsmtx is None or tls is None:
                break
            dsmtx_points.append(dsmtx)
            tls_points.append(tls)
            best_points.append(max(dsmtx, tls))
        else:
            curves["Spec-DSWP"][cores] = geomean(dsmtx_points)
            curves["TLS"][cores] = geomean(tls_points)
            curves["DSMTX Best"][cores] = geomean(best_points)
    report = render_series(curves, title="Figure 4(l): geomean speedup")
    report += (
        "\n\npaper @128 cores: DSMTX Best = 49x, TLS = 15x"
        f"\nthis reproduction @128: DSMTX Best = "
        f"{curves['DSMTX Best'][128]:.1f}x, TLS = {curves['TLS'][128]:.1f}x"
    )
    write_report("fig4l_geomean", report)
    return curves


def bench_fig4l_geomean(benchmark):
    curves = benchmark.pedantic(_geomean_curves, rounds=1, iterations=1)
    best_128 = curves["DSMTX Best"][128]
    tls_128 = curves["TLS"][128]
    # The paper reports 49x vs 15x; the shape requirement is "DSMTX in
    # the tens, a multiple of TLS".
    assert 25 < best_128 < 70
    assert tls_128 < 0.65 * best_128
    # DSMTX Best keeps improving with cores; TLS flattens earlier.
    assert best_128 > curves["DSMTX Best"][64]
    tls_gain = tls_128 / curves["TLS"][64]
    best_gain = best_128 / curves["DSMTX Best"][64]
    assert best_gain > tls_gain
