"""Wall-clock harness entry point (see README.md in this directory).

As a script this is equivalent to ``python -m repro perf`` (full
matrix, writes ``BENCH_sim.json`` at the repo root).  Under pytest it
runs the smoke matrix once and validates the result records without
touching ``BENCH_sim.json`` — a fast check that the harness itself
works, not a performance assertion.
"""

from __future__ import annotations

import pathlib
import sys

from repro.perf import MATRIX, run_matrix

_RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def test_wallclock_smoke():
    results = run_matrix(smoke=True, repeats=1)
    assert [r.name for r in results] == list(MATRIX)
    for result in results:
        assert result.events > 0
        assert result.wall_seconds > 0
        assert result.sim_seconds > 0
        assert result.events_per_sec > 0
    report = "\n".join(
        f"{r.name:24s} {r.events:>9d} events  {r.wall_seconds:.4f} s"
        for r in results
    )
    _RESULTS_DIR.mkdir(exist_ok=True)
    (_RESULTS_DIR / "perf_wallclock_smoke.txt").write_text(report + "\n")


if __name__ == "__main__":
    from repro.cli import main

    sys.exit(main(["perf", *sys.argv[1:]]))
