"""Ablation: inter-node latency sensitivity (the paper's core premise).

Section 2.1 argues the whole case for Spec-DSWP on clusters: pipeline
parallelism keeps dependence recurrences thread-local, so throughput is
insensitive to inter-node latency, while TLS's cyclic communication puts
every added microsecond on the critical path.  Figure 1 shows it for a
toy loop; this ablation shows it at full-system scale by sweeping the
simulated InfiniBand latency under 456.hmmer on 64 cores.
"""

from dataclasses import replace

from _common import observed_run, write_report
from repro.analysis import render_table
from repro.cluster import DEFAULT_CLUSTER
from repro.core import DSMTXSystem, SystemConfig
from repro.workloads import Hmmer

CORES = 64
LATENCIES_US = (1.0, 2.0, 4.0, 8.0, 16.0)


def _speedup(scheme, latency_us):
    cluster = replace(DEFAULT_CLUSTER, inter_node_latency_s=latency_us * 1e-6)
    config = SystemConfig(cluster=cluster, total_cores=CORES)
    sequential = Hmmer().sequential_seconds(config)
    workload = Hmmer()
    plan = workload.dsmtx_plan() if scheme == "dsmtx" else workload.tls_plan()
    result = observed_run(DSMTXSystem(plan, config))
    return sequential / result.elapsed_seconds


def _measure():
    results = {}
    rows = []
    for latency_us in LATENCIES_US:
        dswp = _speedup("dsmtx", latency_us)
        tls = _speedup("tls", latency_us)
        results[latency_us] = (dswp, tls)
        rows.append([f"{latency_us:.0f}", f"{dswp:.1f}x", f"{tls:.1f}x"])
    report = render_table(
        ["inter-node latency (us)", "Spec-DSWP", "TLS"],
        rows,
        title=f"Ablation: latency sensitivity, 456.hmmer on {CORES} cores",
    )
    write_report("ablation_latency", report)
    return results


def bench_ablation_latency(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)
    base_dswp, base_tls = results[LATENCIES_US[0]]
    worst_dswp, worst_tls = results[LATENCIES_US[-1]]
    # Spec-DSWP holds up as latency grows 16x; TLS collapses.
    assert worst_dswp > 0.80 * base_dswp
    assert worst_tls < 0.45 * base_tls
    # At every latency, Spec-DSWP leads — and the lead widens.
    for latency_us in LATENCIES_US:
        dswp, tls = results[latency_us]
        assert dswp > tls
    assert (worst_dswp / worst_tls) > 2.0 * (base_dswp / base_tls)
