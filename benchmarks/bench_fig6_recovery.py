"""Figure 6: recovery overhead at a 0.1% misspeculation rate.

For the benchmarks with input-dependent misspeculation (130.li,
197.parser, 256.bzip2, crc32, blackscholes, swaptions) the paper runs at
32/64/96/128 cores with iterations misspeculating at a 0.1% rate, and
decomposes the overhead into ERM (enter recovery mode), FLQ (flush
queues / reinstall protections), SEQ (sequential re-execution), and RFP
(refill pipeline) — with RFP the dominant term, because DSMTX squashes
every iteration past the misspeculated one.

052.alvinn, 164.gzip, 179.art, 456.hmmer, and 464.h264ref are excluded,
as in the paper: they have no input-dependent misspeculation.
"""

from _common import RECOVERY_CORE_COUNTS, observed_run, write_report
from repro.analysis import render_table
from repro.core import DSMTXSystem, SystemConfig
from repro.workloads import BENCHMARKS

FIG6_BENCHMARKS = ("130.li", "197.parser", "256.bzip2", "crc32",
                   "blackscholes", "swaptions")
MISSPEC_RATE = 0.001


def _injected(iterations):
    step = int(round(1.0 / MISSPEC_RATE))
    injected = set(range(step - 1, iterations, step))
    if not injected:
        injected = {iterations // 2}
    return injected


def _run(name, cores, with_misspec):
    factory = BENCHMARKS[name]
    iterations = factory().iterations
    misspec = _injected(iterations) if with_misspec else set()
    workload = factory(misspec_iterations=misspec)
    system = DSMTXSystem(workload.dsmtx_plan(), SystemConfig(total_cores=cores))
    result = observed_run(system)
    return system, result


def _measure():
    data = {}
    rows = []
    for name in FIG6_BENCHMARKS:
        for cores in RECOVERY_CORE_COUNTS:
            _clean_system, clean = _run(name, cores, with_misspec=False)
            system, degraded = _run(name, cores, with_misspec=True)
            stats = system.stats
            overhead = max(0.0, degraded.elapsed_seconds - clean.elapsed_seconds)
            accounted = stats.erm_seconds + stats.flq_seconds + stats.seq_seconds
            refill = max(0.0, overhead - accounted)
            data[(name, cores)] = {
                "clean": clean.elapsed_seconds,
                "degraded": degraded.elapsed_seconds,
                "misspecs": stats.misspeculations,
                "erm": stats.erm_seconds,
                "flq": stats.flq_seconds,
                "seq": stats.seq_seconds,
                "rfp": refill,
            }
            entry = data[(name, cores)]
            rows.append([
                name, cores, entry["misspecs"],
                f"{clean.elapsed_seconds * 1e3:.2f}",
                f"{degraded.elapsed_seconds * 1e3:.2f}",
                f"{entry['erm'] * 1e6:.0f}",
                f"{entry['flq'] * 1e6:.0f}",
                f"{entry['seq'] * 1e6:.0f}",
                f"{entry['rfp'] * 1e6:.0f}",
            ])
    report = render_table(
        ["benchmark", "cores", "misspecs", "clean(ms)", "with-mis(ms)",
         "ERM(us)", "FLQ(us)", "SEQ(us)", "RFP(us)"],
        rows,
        title="Figure 6: recovery overhead at a 0.1% misspeculation rate",
    )
    write_report("fig6_recovery", report)
    return data


def bench_fig6_recovery(benchmark):
    data = benchmark.pedantic(_measure, rounds=1, iterations=1)
    for (name, cores), entry in data.items():
        # Recovery actually happened and the run still completed.
        assert entry["misspecs"] >= 1, (name, cores)
        # Misspeculation costs time, but the system absorbs a 0.1% rate
        # without collapsing (the full bars in Figure 6 stay tall).
        assert entry["degraded"] >= entry["clean"] * 0.999, (name, cores)
        assert entry["degraded"] < entry["clean"] * 3.0, (name, cores)
    # RFP dominates the directly-measured phases in aggregate at high
    # core counts (the paper's headline observation).
    total_rfp = sum(e["rfp"] for (n, c), e in data.items() if c == 128)
    total_seq = sum(e["seq"] for (n, c), e in data.items() if c == 128)
    total_flq = sum(e["flq"] for (n, c), e in data.items() if c == 128)
    assert total_rfp > total_seq
    assert total_rfp > total_flq
