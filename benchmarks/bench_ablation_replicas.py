"""Ablation: COA read replicas (extension of the paper's §3.2 note).

The paper remarks that the speculation-management units' algorithms are
parallelizable.  In this runtime the commit unit's Copy-On-Access
service is the measured hot spot — every worker's first touch of shared
input data funnels through one NIC, the very effect that caps
052.alvinn and 197.parser (section 5.2).  This extension shards COA for
*declared read-only* pages across replica units (unconditionally sound:
such pages can never be committed to, so replica caches cannot go
stale) and measures the payoff at high core counts.
"""

from _common import observed_run, write_report
from repro.analysis import render_table
from repro.core import DSMTXSystem, SystemConfig
from repro.workloads import BENCHMARKS

CORES = 96
REPLICA_COUNTS = (0, 2, 4)
TARGETS = ("052.alvinn", "197.parser")


def _speedup(name, replicas):
    factory = BENCHMARKS[name]
    config = SystemConfig(total_cores=CORES, coa_replicas=replicas)
    sequential = factory().sequential_seconds(config)
    system = DSMTXSystem(factory().dsmtx_plan(), config)
    result = observed_run(system)
    hits = sum(replica.hits for replica in system.coa_replicas)
    return sequential / result.elapsed_seconds, hits


def _measure():
    results = {}
    rows = []
    for name in TARGETS:
        for replicas in REPLICA_COUNTS:
            speedup, hits = _speedup(name, replicas)
            results[(name, replicas)] = speedup
            rows.append([name, replicas, f"{speedup:.1f}x", hits])
    report = render_table(
        ["benchmark", "COA replicas", "speedup", "replica cache hits"],
        rows,
        title=f"Ablation: COA read replicas at {CORES} cores (replicas take "
              "cores from the worker budget)",
    )
    write_report("ablation_coa_replicas", report)
    return results


def bench_ablation_coa_replicas(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)
    for name in TARGETS:
        # Two replicas beat none despite costing two worker cores: the
        # COA bottleneck outweighs the lost compute.
        assert results[(name, 2)] > results[(name, 0)]
