"""Shared helpers for the evaluation benches.

Each bench regenerates one table or figure of the paper: it runs the
relevant experiments, renders the same rows/series the paper reports,
writes them to ``benchmarks/results/<name>.txt``, prints them, and
asserts the qualitative *shape* the paper claims (who wins, where the
plateaus fall) — not absolute numbers, since the substrate here is a
simulator rather than the authors' InfiniBand testbed.

Set ``REPRO_FULL_SWEEP=1`` to use the paper's full 8..128 core grid in
Figure 4 instead of the five-point default.

Pass ``--trace-out out.json`` (or set ``REPRO_TRACE=out.json``) to any
bench that drives :class:`~repro.core.DSMTXSystem` directly and every
run is captured as a Perfetto trace — repeated runs get ``out.1.json``,
``out.2.json``, ... (see ``docs/OBSERVABILITY.md``; plain ``--trace``
is pytest's debugger flag).
"""

from __future__ import annotations

import itertools
import os
import pathlib
import sys

__all__ = [
    "CORE_COUNTS",
    "RECOVERY_CORE_COUNTS",
    "observed_run",
    "trace_path",
    "write_report",
]

_RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Core counts for the scalability sweeps (paper: 8,16,...,128).
if os.environ.get("REPRO_FULL_SWEEP"):
    CORE_COUNTS = tuple(range(8, 129, 8))
else:
    CORE_COUNTS = (8, 32, 64, 96, 128)

#: Core counts for the Figure 6 recovery analysis.
RECOVERY_CORE_COUNTS = (32, 64, 96, 128)


#: Counts traced runs so one bench invocation yields distinct files.
_TRACE_SEQUENCE = itertools.count()


def trace_path() -> str | None:
    """The trace output requested for this bench invocation, if any.

    Reads ``--trace-out PATH`` / ``--trace-out=PATH`` from the command
    line (registered with pytest in ``benchmarks/conftest.py``), falling
    back to the ``REPRO_TRACE`` environment variable.
    """
    argv = sys.argv
    for index, arg in enumerate(argv):
        if arg == "--trace-out" and index + 1 < len(argv):
            return argv[index + 1]
        if arg.startswith("--trace-out="):
            return arg.split("=", 1)[1]
    return os.environ.get("REPRO_TRACE")


def observed_run(system, iterations=None):
    """``system.run()``, capturing a Perfetto trace when requested.

    With no ``--trace-out``/``REPRO_TRACE`` this is ``system.run()``
    — no instrumentation is attached, so bench timings are unaffected.
    When tracing, the first run of the invocation writes to the given
    path and later runs to ``<stem>.N<suffix>``.
    """
    path = trace_path()
    if path is None:
        return system.run(iterations)
    from repro.obs import instrument, write_chrome_trace

    hub = instrument(system)
    result = system.run(iterations)
    hub.finalize(system)
    sequence = next(_TRACE_SEQUENCE)
    out = pathlib.Path(path)
    if sequence:
        out = out.with_name(f"{out.stem}.{sequence}{out.suffix}")
    write_chrome_trace(
        hub.tracer, out, metadata={"metrics": hub.metrics.snapshot()}
    )
    print(f"trace written: {out}", file=sys.stderr)
    return result


def write_report(name: str, text: str) -> None:
    """Persist a bench report and echo it."""
    _RESULTS_DIR.mkdir(exist_ok=True)
    path = _RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print()
    print(text)
