"""Shared helpers for the evaluation benches.

Each bench regenerates one table or figure of the paper: it runs the
relevant experiments, renders the same rows/series the paper reports,
writes them to ``benchmarks/results/<name>.txt``, prints them, and
asserts the qualitative *shape* the paper claims (who wins, where the
plateaus fall) — not absolute numbers, since the substrate here is a
simulator rather than the authors' InfiniBand testbed.

Set ``REPRO_FULL_SWEEP=1`` to use the paper's full 8..128 core grid in
Figure 4 instead of the five-point default.
"""

from __future__ import annotations

import os
import pathlib

__all__ = ["CORE_COUNTS", "RECOVERY_CORE_COUNTS", "write_report"]

_RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Core counts for the scalability sweeps (paper: 8,16,...,128).
if os.environ.get("REPRO_FULL_SWEEP"):
    CORE_COUNTS = tuple(range(8, 129, 8))
else:
    CORE_COUNTS = (8, 32, 64, 96, 128)

#: Core counts for the Figure 6 recovery analysis.
RECOVERY_CORE_COUNTS = (32, 64, 96, 128)


def write_report(name: str, text: str) -> None:
    """Persist a bench report and echo it."""
    _RESULTS_DIR.mkdir(exist_ok=True)
    path = _RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print()
    print(text)
