"""Figure 4(a-k): per-benchmark speedup vs core count, Spec-DSWP vs TLS.

One bench per benchmark; each regenerates its panel's two curves on the
simulated 128-core cluster and asserts the qualitative shape the paper
reports for it in section 5.2 (plateaus, peaks, who wins).  Absolute
numbers differ from the paper's hardware, but the bottleneck structure —
bandwidth saturation, latency-bound TLS chains, work-unit limits — is
reproduced.
"""

import pytest

from _common import CORE_COUNTS, write_report
from fig4_data import figure4_curve
from repro.analysis import render_series
from repro.workloads import BENCHMARKS

PANELS = "abcdefghijk"


def _panel(name):
    workload = BENCHMARKS[name]()
    dsmtx = figure4_curve(name, "dsmtx", CORE_COUNTS)
    tls = figure4_curve(name, "tls", CORE_COUNTS)
    label = workload.dsmtx_plan().label
    index = list(BENCHMARKS).index(name)
    report = render_series(
        {label: dsmtx, "TLS": tls},
        title=f"Figure 4({PANELS[index]}): {name}",
    )
    write_report(f"fig4{PANELS[index]}_{name.replace('.', '_')}", report)
    return dsmtx, tls


@pytest.fixture(scope="module")
def panels():
    return {}


def _get(panels, name):
    if name not in panels:
        panels[name] = _panel(name)
    return panels[name]


def bench_fig4a_alvinn(benchmark, panels):
    dsmtx, tls = benchmark.pedantic(
        lambda: _get(panels, "052.alvinn"), rounds=1, iterations=1)
    # Both parallelizations are identical Spec-DOALL (section 5.1).
    assert dsmtx == tls
    # Per-invocation initialization/reduction synchronization limits the
    # speedup: a plateau well below linear.
    assert dsmtx[128] > 30
    assert dsmtx[128] < 1.25 * dsmtx[64]


def bench_fig4b_li(benchmark, panels):
    dsmtx, tls = benchmark.pedantic(
        lambda: _get(panels, "130.li"), rounds=1, iterations=1)
    # TLS is limited by print synchronization; Spec-DSWP is well ahead.
    assert dsmtx[32] > 1.5 * tls[32]
    assert dsmtx[128] > 2.5 * tls[128]
    assert tls[128] < tls[32]  # TLS degrades as hops lengthen


def bench_fig4c_gzip(benchmark, panels):
    dsmtx, tls = benchmark.pedantic(
        lambda: _get(panels, "164.gzip"), rounds=1, iterations=1)
    # Very high bandwidth requirements cap the speedup early (sec 5.2).
    assert 8 < dsmtx[128] < 25
    assert dsmtx[128] < 1.15 * dsmtx[32]  # plateau from 32 cores on
    assert tls[128] <= dsmtx[128] * 1.05


def bench_fig4d_art(benchmark, panels):
    dsmtx, tls = benchmark.pedantic(
        lambda: _get(panels, "179.art"), rounds=1, iterations=1)
    # Round-trip communication makes TLS grow slower than DSMTX.
    assert dsmtx[128] > 1.5 * tls[128]
    assert dsmtx[128] > 40


def bench_fig4e_parser(benchmark, panels):
    dsmtx, tls = benchmark.pedantic(
        lambda: _get(panels, "197.parser"), rounds=1, iterations=1)
    # Per-worker dictionary copies saturate bandwidth past ~32-64 cores.
    peak_cores = max(dsmtx, key=dsmtx.get)
    assert 32 <= peak_cores <= 96
    assert dsmtx[128] < dsmtx[peak_cores]
    assert dsmtx[128] > 15


def bench_fig4f_bzip2(benchmark, panels):
    dsmtx, tls = benchmark.pedantic(
        lambda: _get(panels, "256.bzip2"), rounds=1, iterations=1)
    # TLS sends only the file descriptor while Spec-DSWP replicates the
    # file buffer per worker: TLS is slightly better at scale (sec 5.2).
    assert tls[128] >= 0.9 * dsmtx[128]
    assert dsmtx[64] > 20  # far less bandwidth-bound than gzip


def bench_fig4g_hmmer(benchmark, panels):
    dsmtx, tls = benchmark.pedantic(
        lambda: _get(panels, "456.hmmer"), rounds=1, iterations=1)
    # Spec-DSWP scales to high core counts; TLS's cyclic dependence puts
    # latency on the critical path and peaks early.
    assert dsmtx[128] > 60
    tls_peak_cores = max(tls, key=tls.get)
    assert tls_peak_cores <= 96
    assert tls[128] < 0.5 * dsmtx[128]


def bench_fig4h_h264ref(benchmark, panels):
    dsmtx, tls = benchmark.pedantic(
        lambda: _get(panels, "464.h264ref"), rounds=1, iterations=1)
    # Speedup limited by the number of GoPs: flat once every GoP has a
    # worker.  TLS is effectively serialized by its inner-loop sync.
    assert dsmtx[128] == pytest.approx(dsmtx[96], rel=0.10)
    assert dsmtx[128] > 20
    assert tls[128] < 2.0


def bench_fig4i_crc32(benchmark, panels):
    dsmtx, tls = benchmark.pedantic(
        lambda: _get(panels, "crc32"), rounds=1, iterations=1)
    # Limited by the number of input files.
    assert 10 < dsmtx[128] < 40
    assert dsmtx[128] == pytest.approx(dsmtx[96], rel=0.10)


def bench_fig4j_blackscholes(benchmark, panels):
    dsmtx, tls = benchmark.pedantic(
        lambda: _get(panels, "blackscholes"), rounds=1, iterations=1)
    # TLS peaks mid-range (paper: ~52 cores) from communication latency.
    assert dsmtx[128] > 60
    tls_peak_cores = max(tls, key=tls.get)
    assert 32 <= tls_peak_cores <= 96
    assert tls[128] < tls[tls_peak_cores]


def bench_fig4k_swaptions(benchmark, panels):
    dsmtx, tls = benchmark.pedantic(
        lambda: _get(panels, "swaptions"), rounds=1, iterations=1)
    # Identical Spec-DOALL parallelizations; input size limits scaling.
    assert dsmtx == tls
    assert dsmtx[128] < 0.8 * 126  # visibly below linear
    assert dsmtx[128] > 30
