"""Bench-local pytest hooks.

Registers the ``--trace-out`` option so bench invocations like::

    pytest benchmarks/bench_fig6_recovery.py --benchmark-only \
        --trace-out out.json

are accepted (pytest already owns plain ``--trace`` for its debugger);
``_common.observed_run`` reads the value from ``sys.argv``, so setting
``REPRO_TRACE=out.json`` works identically.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--trace-out",
        action="store",
        default=None,
        help="capture each DSMTX run as a Perfetto trace at this path "
             "(repeats get a .N suffix); see docs/OBSERVABILITY.md",
    )
