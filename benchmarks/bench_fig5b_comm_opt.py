"""Figure 5(b): effect of the communication optimization at 128 cores.

DSMTX coalesces produced values and issues one MPI send per batch;
the unoptimized baseline pays a full MPI call per datum.  The paper
shows batching yields much better speedup for the applications with
fine-grained communication, while 052.alvinn, 164.gzip, and 256.bzip2 —
whose array data is already explicitly produced in chunks — see little
benefit (section 5.3).
"""

from _common import observed_run, write_report
from fig4_data import figure4_point
from repro.analysis import geomean, render_table
from repro.core import DSMTXSystem, SystemConfig
from repro.workloads import BENCHMARKS

CORES = 128

#: Benchmarks whose data already moves in chunks (little benefit; the
#: paper names 052.alvinn, 164.gzip, 256.bzip2 — here bzip2 retains a
#: modest benefit from batching its subTX markers, see EXPERIMENTS.md).
CHUNKED = ("052.alvinn", "164.gzip", "crc32", "464.h264ref", "swaptions")
#: Benchmarks with fine-grained produces (large benefit).
FINE_GRAINED = ("130.li", "456.hmmer", "blackscholes")


def _measure():
    results = {}
    rows = []
    for name, factory in BENCHMARKS.items():
        optimized = figure4_point(name, "dsmtx", CORES)
        workload = factory()
        sequential = factory().sequential_seconds(SystemConfig(total_cores=CORES))
        system = DSMTXSystem(
            workload.dsmtx_plan(),
            SystemConfig(total_cores=CORES, channel_mode="direct"),
        )
        run = observed_run(system)
        unoptimized = sequential / run.elapsed_seconds
        results[name] = (unoptimized, optimized)
        rows.append([name, f"{unoptimized:.1f}x", f"{optimized:.1f}x",
                     f"{optimized / unoptimized:.2f}"])
    both = list(zip(*results.values()))
    rows.append(["geomean", f"{geomean(both[0]):.1f}x", f"{geomean(both[1]):.1f}x",
                 f"{geomean(both[1]) / geomean(both[0]):.2f}"])
    report = render_table(
        ["benchmark", "NonOptimized", "Optimized", "ratio"],
        rows,
        title=f"Figure 5(b): communication optimization at {CORES} cores "
              "(batched DSMTX queues vs one MPI call per datum)",
    )
    write_report("fig5b_comm_optimization", report)
    return results


def bench_fig5b_comm_optimization(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)
    # Batching never loses, and wins big where produces are fine-grained.
    for name, (unoptimized, optimized) in results.items():
        assert optimized >= 0.95 * unoptimized, name
    fine_ratios = [results[n][1] / results[n][0] for n in FINE_GRAINED]
    chunked_ratios = [results[n][1] / results[n][0] for n in CHUNKED]
    assert min(fine_ratios) > 1.25
    # Chunked applications benefit much less than fine-grained ones.
    assert max(chunked_ratios) < min(fine_ratios)
    assert geomean(chunked_ratios) < 1.10
