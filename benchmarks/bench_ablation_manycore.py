"""Ablation: DSMTX on a non-coherent manycore (paper sections 2.3 / 7).

The paper's conclusion argues DSMTX also adds value to emerging
manycores that discard chip-wide cache coherence (Intel's 48-core
message-passing processor): the same programming challenges as a
cluster, "with the main difference being lower communication latency."

This bench runs 130.li on both fabrics at 48 cores.  Expected shape:
Spec-DSWP performs well on both (it never depended on latency); TLS —
crippled on the cluster — becomes competitive on-chip, because its
cyclic dependences now cost nanoseconds rather than microseconds.
"""

from _common import observed_run, write_report
from repro.analysis import render_table
from repro.cluster import DEFAULT_CLUSTER
from repro.cluster.spec import SCC_LIKE
from repro.core import DSMTXSystem, SystemConfig
from repro.workloads import Li

CORES = 48


def _speedup(cluster, scheme):
    config = SystemConfig(cluster=cluster, total_cores=CORES)
    sequential = Li().sequential_seconds(config)
    workload = Li()
    plan = workload.dsmtx_plan() if scheme == "dsmtx" else workload.tls_plan()
    result = observed_run(DSMTXSystem(plan, config))
    return sequential / result.elapsed_seconds


def _measure():
    fabrics = {"InfiniBand cluster": DEFAULT_CLUSTER, "SCC-like manycore": SCC_LIKE}
    results = {}
    rows = []
    for name, cluster in fabrics.items():
        dswp = _speedup(cluster, "dsmtx")
        tls = _speedup(cluster, "tls")
        results[name] = (dswp, tls)
        rows.append([name, f"{dswp:.1f}x", f"{tls:.1f}x", f"{tls / dswp:.2f}"])
    report = render_table(
        ["fabric", "Spec-DSWP", "TLS", "TLS/DSWP"],
        rows,
        title=f"Ablation: 130.li on {CORES} cores, cluster vs "
              "non-coherent manycore",
    )
    write_report("ablation_manycore", report)
    return results


def bench_ablation_manycore(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)
    cluster_dswp, cluster_tls = results["InfiniBand cluster"]
    chip_dswp, chip_tls = results["SCC-like manycore"]
    # Spec-DSWP works well on both fabrics.
    assert cluster_dswp > 15
    assert chip_dswp > 15
    # TLS's latency handicap shrinks dramatically on-chip.
    assert (chip_tls / chip_dswp) > 1.5 * (cluster_tls / cluster_dswp)
