"""Shared, memoized measurement cache for the Figure 4 benches.

Both the per-benchmark scalability bench and the geomean bench need the
same (benchmark, scheme, cores) speedup measurements; this module
computes each point once per session.
"""

from __future__ import annotations

from repro.analysis import measure_speedup
from repro.workloads import BENCHMARKS

_cache: dict = {}


def figure4_point(name: str, scheme: str, cores: int) -> float:
    """Speedup of one benchmark/scheme/core-count combination."""
    key = (name, scheme, cores)
    if key not in _cache:
        factory = BENCHMARKS[name]
        plan = factory().dsmtx_plan() if scheme == "dsmtx" else factory().tls_plan()
        if cores < plan.min_cores:
            _cache[key] = None
        else:
            _cache[key] = measure_speedup(factory, scheme, cores).speedup
    return _cache[key]


def figure4_curve(name: str, scheme: str, core_counts) -> dict:
    """{cores: speedup} for one line of a Figure 4 panel."""
    curve = {}
    for cores in core_counts:
        speedup = figure4_point(name, scheme, cores)
        if speedup is not None:
            curve[cores] = speedup
    return curve
